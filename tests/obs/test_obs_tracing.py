"""Unit tests for the span tracer (repro.obs.tracing)."""

import threading

import pytest

from repro.obs import Tracer, get_tracer, trace, trace_enabled_from_env
from repro.obs.tracing import _NULL_SPAN


class TestGate:
    def test_disabled_by_default(self):
        t = Tracer(enabled=False)
        assert not t.enabled

    def test_env_gate_spellings(self):
        for off in ("", "0", "false", "no", "off", "FALSE", " Off "):
            assert not trace_enabled_from_env({"REPRO_TRACE": off})
        for on in ("1", "true", "yes", "on"):
            assert trace_enabled_from_env({"REPRO_TRACE": on})
        assert not trace_enabled_from_env({})

    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        cm = t.span("x", a=1)
        assert cm is _NULL_SPAN
        assert cm is t.span("y")  # one shared instance, no allocation
        with cm:
            pass
        assert t.spans() == []

    def test_disabled_instant_records_nothing(self):
        t = Tracer(enabled=False)
        t.instant("x")
        assert t.spans() == []

    def test_enable_disable_round_trip(self):
        t = Tracer(enabled=False)
        t.enable()
        with t.span("a"):
            pass
        t.disable()
        with t.span("b"):
            pass
        assert [s.name for s in t.spans()] == ["a"]


class TestRecording:
    def test_span_records_name_attrs_and_times(self):
        t = Tracer(enabled=True)
        with t.span("fit.iter", iter=3):
            pass
        (s,) = t.spans()
        assert s.name == "fit.iter"
        assert s.attrs == {"iter": 3}
        assert s.t1 >= s.t0
        assert s.duration_s == s.t1 - s.t0

    def test_nesting_sets_parent_id(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans()  # inner finishes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_instant_is_zero_duration_and_nested(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            t.instant("tick", n=1)
        tick, outer = t.spans()
        assert tick.duration_s == 0.0
        assert tick.parent_id == outer.span_id
        assert tick.attrs == {"n": 1}

    def test_span_survives_exceptions(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (s,) = t.spans()
        assert s.name == "boom"
        # the stack unwound: the next span is a root again
        with t.span("after"):
            pass
        assert t.spans()[-1].parent_id is None

    def test_mark_scopes_a_window(self):
        t = Tracer(enabled=True)
        with t.span("before"):
            pass
        mark = t.mark()
        with t.span("after"):
            pass
        assert [s.name for s in t.spans(mark)] == ["after"]

    def test_summary_aggregates_per_name(self):
        t = Tracer(enabled=True)
        for i in range(3):
            with t.span("a"):
                pass
        with t.span("b"):
            pass
        summary = t.summary()
        assert summary["a"]["count"] == 3
        assert summary["b"]["count"] == 1
        assert summary["a"]["total_s"] >= 0.0

    def test_reset_clears_spans_and_ids(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            pass
        t.reset()
        assert t.spans() == []
        with t.span("b"):
            pass
        assert t.spans()[0].span_id == 1


class TestThreads:
    def test_worker_thread_spans_root_on_their_own_lane(self):
        t = Tracer(enabled=True)

        def work():
            with t.span("worker"):
                pass

        with t.span("main"):
            th = threading.Thread(target=work, name="lane-1")
            th.start()
            th.join()
        worker = next(s for s in t.spans() if s.name == "worker")
        main = next(s for s in t.spans() if s.name == "main")
        # fresh threads start with an empty stack: no cross-thread parent
        assert worker.parent_id is None
        assert worker.thread_id != main.thread_id
        assert worker.thread_name == "lane-1"

    def test_concurrent_spans_all_recorded(self, lockdep):
        t = Tracer(enabled=True)
        n_threads, per_thread = 8, 50

        def work(i):
            for _ in range(per_thread):
                with t.span(f"w{i}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = t.spans()
        assert len(spans) == n_threads * per_thread
        # span ids are unique even under contention
        assert len({s.span_id for s in spans}) == len(spans)


def test_module_level_tracer_is_the_singleton():
    assert get_tracer() is trace
