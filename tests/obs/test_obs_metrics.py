"""Unit tests for the metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs import MetricsRegistry, get_registry, metrics
from repro.obs.metrics import DEFAULT_BUCKETS


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("x")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_max_keeps_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.max(3)
        g.max(7)
        g.max(2)
        assert g.value == 7.0


class TestHistogram:
    def test_observe_lands_in_first_bucket_ge_value(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [1.0, 2.0, 4.0]
        # 0.5 and 1.0 -> le=1; 1.5 -> le=2; 3.0 -> le=4; 100 -> +Inf
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)

    def test_unsorted_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(2.0, 1.0))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap["counters"]["c"] == 1.0

    def test_cross_kind_name_reuse_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        # names are reusable (any kind) after reset
        reg.gauge("c").set(1)

    def test_concurrent_increments_do_not_lose_updates(self, lockdep):
        reg = MetricsRegistry()
        per_thread = 1000

        def work():
            c = reg.counter("hits")
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert reg.counter("hits").value == 8 * per_thread


def test_module_level_registry_is_the_singleton():
    assert get_registry() is metrics
