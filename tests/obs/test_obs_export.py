"""Unit tests for the exporters (repro.obs.export)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu import A100_80GB, Device
from repro.obs import (
    MetricsRegistry,
    Tracer,
    combined_chrome_trace,
    estimator_profilers,
    prometheus_text,
    spans_to_chrome_events,
    stats_to_prometheus,
    write_combined_trace,
    write_jsonl,
)
from repro.obs.export import SPAN_PID


def _tracer_with_spans():
    t = Tracer(enabled=True)
    with t.span("fit.iter", iter=0):
        with t.span("fit.distances"):
            pass
    return t


class TestChromeEvents:
    def test_spans_become_complete_events(self):
        t = _tracer_with_spans()
        events = spans_to_chrome_events(t.spans())
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"fit.iter", "fit.distances"}
        for e in xs:
            assert e["pid"] == SPAN_PID
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert e["cat"] == "fit"

    def test_timeline_zeroed_at_first_span(self):
        t = _tracer_with_spans()
        events = spans_to_chrome_events(t.spans())
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0.0

    def test_process_and_thread_metadata(self):
        t = _tracer_with_spans()
        events = spans_to_chrome_events(t.spans())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names and "thread_name" in names


class TestCombinedTrace:
    def test_spans_and_profilers_get_distinct_pids(self):
        t = _tracer_with_spans()
        from repro.gpu.launch import Launch

        dev = Device(A100_80GB)
        dev.profiler.record(
            Launch("k", flops=1e9, bytes=1e6, time_s=1e-4, phase="fit")
        )
        events = combined_chrome_trace(
            tracer=t, profilers={"dev0": dev.profiler, "dev1": dev.profiler}
        )
        pids = {e["pid"] for e in events}
        assert pids == {SPAN_PID, SPAN_PID + 1, SPAN_PID + 2}
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert proc_names[SPAN_PID] == "wall-clock spans"
        assert proc_names[SPAN_PID + 1] == "dev0"
        assert proc_names[SPAN_PID + 2] == "dev1"

    def test_spans_only_trace_still_has_environment(self):
        t = _tracer_with_spans()
        events = combined_chrome_trace(tracer=t)
        assert any(e.get("name") == "environment" for e in events)

    def test_write_is_valid_json(self, tmp_path):
        t = _tracer_with_spans()
        path = tmp_path / "trace.json"
        write_combined_trace(str(path), tracer=t)
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events

    def test_since_scopes_the_window(self):
        t = _tracer_with_spans()
        mark = t.mark()
        with t.span("late"):
            pass
        events = combined_chrome_trace(tracer=t, since=mark)
        xs = [e["name"] for e in events if e["ph"] == "X"]
        assert xs == ["late"]


class TestEstimatorProfilers:
    def test_host_fit_single_lane(self):
        from repro.estimators import make_estimator

        rng = np.random.default_rng(0)
        x = rng.standard_normal((60, 5))
        est = make_estimator(
            "popcorn", n_clusters=3, backend="host", kernel="linear",
            dtype=np.float64, max_iter=2, seed=0,
        ).fit(x)
        lanes = estimator_profilers(est)
        assert list(lanes) == ["backend:host"]

    def test_sharded_fit_one_lane_per_device_plus_comm(self):
        from repro.estimators import make_estimator

        rng = np.random.default_rng(0)
        x = rng.standard_normal((60, 5))
        est = make_estimator(
            "popcorn", n_clusters=3, backend="sharded:3", kernel="linear",
            dtype=np.float64, max_iter=2, seed=0,
        ).fit(x)
        lanes = estimator_profilers(est)
        assert list(lanes) == ["dev0", "dev1", "dev2", "comm"]

    def test_unfitted_object_yields_nothing(self):
        assert estimator_profilers(object()) == {}


class TestJsonl:
    def test_span_lines_then_metrics_snapshot(self, tmp_path):
        t = _tracer_with_spans()
        reg = MetricsRegistry()
        reg.counter("pool.tasks").inc(4)
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), tracer=t, registry=reg)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [ln["event"] for ln in lines] == ["span", "span", "metrics"]
        assert lines[0]["name"] == "fit.distances"  # finishes first
        assert lines[-1]["snapshot"]["counters"] == {"pool.tasks": 4.0}


class TestPrometheus:
    def test_registry_snapshot_rendering(self):
        reg = MetricsRegistry()
        reg.counter("pool.steals").inc(3)
        reg.gauge("serve.queue_depth").set(7)
        reg.histogram("serve.latency_s", buckets=(0.1, 1.0)).observe(0.5)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_pool_steals_total counter" in text
        assert "repro_pool_steals_total 3.0" in text
        assert "repro_serve_queue_depth 7.0" in text
        assert 'repro_serve_latency_s_bucket{le="0.1"} 0' in text
        assert 'repro_serve_latency_s_bucket{le="1.0"} 1' in text
        assert 'repro_serve_latency_s_bucket{le="+Inf"} 1' in text
        assert "repro_serve_latency_s_count 1" in text
        assert text.endswith("\n")

    def test_stats_dict_rendering_counters_vs_gauges(self):
        stats = {
            "requests": 10,
            "served": 10,
            "latency_p95_ms": 1.25,
            "model_version": 2,
        }
        text = stats_to_prometheus(stats)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 10.0" in text
        # non-monotone stats are gauges, no _total suffix
        assert "# TYPE repro_serve_latency_p95_ms gauge" in text
        assert "repro_serve_model_version 2.0" in text

    def test_non_numeric_stats_skipped(self):
        text = stats_to_prometheus({"requests": 1, "note": "hi"})
        assert "note" not in text


def test_service_stats_format_prom(tmp_path):
    """The service's own prom face round-trips through stats()."""
    from repro.estimators import make_estimator
    from repro.serve import PredictionService

    rng = np.random.default_rng(0)
    x = rng.standard_normal((60, 5))
    est = make_estimator(
        "popcorn", n_clusters=3, backend="host", kernel="linear",
        dtype=np.float64, max_iter=2, seed=0,
    ).fit(x)
    with PredictionService(est, n_workers=1) as svc:
        svc.predict_many(rng.standard_normal((8, 5)))
        text = svc.stats(format="prom")
        with pytest.raises(ConfigError):
            svc.stats(format="banana")
    assert "repro_serve_served_total 8.0" in text
