"""Tests for device specs and the analytical cost model."""

import pytest

from repro.errors import ConfigError
from repro.gpu import A100_80GB, EPYC_7763, H100_80GB, V100_32GB, named_device
from repro.gpu import cost
from repro.gpu.spec import CPUSpec, DeviceSpec


class TestSpecs:
    def test_named_lookup(self):
        assert named_device("a100-80gb") is A100_80GB
        assert named_device("A100-80GB") is A100_80GB

    def test_unknown_device(self):
        with pytest.raises(ConfigError, match="unknown device"):
            named_device("tpu-v9")

    def test_ridge_point(self):
        assert A100_80GB.ridge_ai == pytest.approx(19500 / 1935)

    def test_invalid_spec(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", peak_fp32_gflops=-1, mem_bw_gbps=100, mem_capacity_gb=1)

    def test_invalid_cpu_spec(self):
        with pytest.raises(ConfigError):
            CPUSpec("bad", dense_gflops=0, scalar_gflops=1, mem_bw_gbps=1)


class TestRooflineTime:
    def test_compute_bound(self):
        # huge flops, no bytes -> compute-limited
        t = cost.roofline_time(A100_80GB, 1e12, 0.0, launches=0)
        assert t == pytest.approx(1e12 / (19500e9))

    def test_memory_bound(self):
        t = cost.roofline_time(A100_80GB, 0.0, 1e9, launches=0)
        assert t == pytest.approx(1e9 / (1935e9))

    def test_max_of_both(self):
        flops, bytes_ = 1e12, 1e9
        t = cost.roofline_time(A100_80GB, flops, bytes_, launches=0)
        assert t == pytest.approx(max(flops / 19500e9, bytes_ / 1935e9))

    def test_launch_overhead_floor(self):
        t = cost.roofline_time(A100_80GB, 1.0, 1.0, launches=1)
        assert t >= A100_80GB.launch_overhead_s

    def test_lib_call_overhead(self):
        base = cost.roofline_time(A100_80GB, 1e9, 1e6)
        lib = cost.roofline_time(A100_80GB, 1e9, 1e6, lib_call=True)
        assert lib == pytest.approx(base + A100_80GB.lib_call_overhead_s)

    def test_efficiency_slows_down(self):
        fast = cost.roofline_time(A100_80GB, 1e12, 0, eff_compute=1.0, launches=0)
        slow = cost.roofline_time(A100_80GB, 1e12, 0, eff_compute=0.5, launches=0)
        assert slow == pytest.approx(2 * fast)

    def test_serialization_multiplier(self):
        base = cost.roofline_time(A100_80GB, 0, 1e9, launches=0)
        ser = cost.roofline_time(A100_80GB, 0, 1e9, serialization=2.0, launches=0)
        assert ser == pytest.approx(2 * base)


class TestOpCosts:
    def test_gemm_flops_formula(self):
        l = cost.gemm_cost(A100_80GB, 1000, 50)
        assert l.flops == 2.0 * 1000 * 1000 * 50

    def test_syrk_half_flops(self):
        g = cost.gemm_cost(A100_80GB, 1000, 50)
        s = cost.syrk_cost(A100_80GB, 1000, 50)
        assert s.flops == pytest.approx(g.flops / 2)

    def test_spmm_flops_are_2n2(self):
        l = cost.spmm_cost(A100_80GB, 5000, 10)
        assert l.flops == 2.0 * 5000 * 5000

    def test_spmv_linear_work(self):
        """Sec. 3.3: the SpMV route is O(n)."""
        l1 = cost.spmv_cost(A100_80GB, 1000, 10)
        l2 = cost.spmv_cost(A100_80GB, 2000, 10)
        assert l2.flops == pytest.approx(2 * l1.flops)

    def test_all_costs_positive(self):
        n, d, k = 4000, 64, 16
        launches = [
            cost.gemm_cost(A100_80GB, n, d),
            cost.syrk_cost(A100_80GB, n, d),
            cost.triangular_copy_cost(A100_80GB, n),
            cost.kernel_transform_cost(A100_80GB, n),
            cost.diag_extract_cost(A100_80GB, n),
            cost.spmm_cost(A100_80GB, n, k),
            cost.spmv_cost(A100_80GB, n, k),
            cost.spgemm_cost(A100_80GB, n, k, 1e6),
            cost.zgather_cost(A100_80GB, n, k),
            cost.dadd_cost(A100_80GB, n, k),
            cost.argmin_cost(A100_80GB, n, k),
            cost.vbuild_cost(A100_80GB, n, k),
            cost.h2d_cost(A100_80GB, 1e6),
            cost.d2h_cost(A100_80GB, 1e6),
            cost.baseline_k1_cost(A100_80GB, n, k),
            cost.baseline_k2_cost(A100_80GB, n, k),
            cost.baseline_k3_cost(A100_80GB, n, k),
        ]
        for l in launches:
            assert l.time_s > 0, l.name
            assert l.bytes >= 0, l.name
            assert l.counted_flops >= l.flops or l.flops == 0, l.name

    def test_times_respect_roofline_lower_bound(self):
        """No op can beat peak compute or peak bandwidth."""
        spec = A100_80GB
        for l in [
            cost.gemm_cost(spec, 8000, 256),
            cost.spmm_cost(spec, 8000, 64),
            cost.baseline_k1_cost(spec, 8000, 64),
            cost.dadd_cost(spec, 8000, 64),
        ]:
            lower = max(
                l.flops / (spec.peak_fp32_gflops * 1e9), l.bytes / (spec.mem_bw_gbps * 1e9)
            )
            assert l.time_s >= lower * 0.999, l.name

    def test_spmm_time_scales_quadratically(self):
        t1 = cost.spmm_cost(A100_80GB, 20000, 50).time_s
        t2 = cost.spmm_cost(A100_80GB, 40000, 50).time_s
        assert 3.5 < t2 / t1 < 4.5

    def test_baseline_counted_flops_exceed_useful(self):
        l = cost.baseline_k1_cost(A100_80GB, 5000, 10)
        assert l.counted_flops > l.flops

    def test_h2d_bandwidth(self):
        l = cost.h2d_cost(A100_80GB, 24e9)
        assert l.time_s == pytest.approx(1.0, rel=0.01)


class TestCPUCosts:
    def test_gram_compute_bound(self):
        l = cost.cpu_gram_cost(EPYC_7763, 10000, 1000)
        assert l.time_s >= l.flops / (EPYC_7763.dense_gflops * 1e9) * 0.999

    def test_iteration_grows_with_k(self):
        """Fig. 3 driver: CPU iteration cost increases with k."""
        t10 = cost.cpu_iteration_cost(EPYC_7763, 5000, 10).time_s
        t100 = cost.cpu_iteration_cost(EPYC_7763, 5000, 100).time_s
        assert t100 > t10

    def test_cpu_much_slower_than_gpu(self):
        n, d = 20000, 100
        cpu_t = cost.cpu_gram_cost(EPYC_7763, n, d).time_s
        gpu_t = cost.gemm_cost(A100_80GB, n, d).time_s
        assert cpu_t / gpu_t > 5


class TestLaunchRecord:
    def test_counted_defaults_to_flops(self):
        l = cost.Launch("x", 100.0, 50.0, 1.0)
        assert l.counted_flops == 100.0

    def test_arithmetic_intensity(self):
        l = cost.Launch("x", 100.0, 50.0, 1.0)
        assert l.arithmetic_intensity == 2.0

    def test_achieved_gflops(self):
        l = cost.Launch("x", 2e9, 1.0, 1.0)
        assert l.achieved_gflops == pytest.approx(2.0)

    def test_with_phase(self):
        l = cost.Launch("x", 1.0, 1.0, 1.0).with_phase("p")
        assert l.phase == "p"

    def test_zero_guards(self):
        l = cost.Launch("x", 0.0, 0.0, 0.0)
        assert l.arithmetic_intensity == 0.0
        assert l.achieved_gflops == 0.0


class TestDeviceComparisons:
    def test_h100_faster_than_a100(self):
        a = cost.spmm_cost(A100_80GB, 30000, 50).time_s
        h = cost.spmm_cost(H100_80GB, 30000, 50).time_s
        assert h < a

    def test_v100_slower_than_a100(self):
        a = cost.gemm_cost(A100_80GB, 20000, 500).time_s
        v = cost.gemm_cost(V100_32GB, 20000, 500).time_s
        assert v > a
