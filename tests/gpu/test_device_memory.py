"""Tests for the simulated device: allocator, buffers, transfers."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceError
from repro.gpu import A100_80GB, Device, DeviceSpec
from repro.gpu.cusparse import DeviceCSR
from repro.sparse import random_csr

TINY = DeviceSpec("tiny", peak_fp32_gflops=1000, mem_bw_gbps=100, mem_capacity_gb=1e-6)


class TestAllocator:
    def test_tracks_live_bytes(self, device):
        b = device.zeros((100, 100))
        assert device.allocated_bytes == b.nbytes
        b.free()
        assert device.allocated_bytes == 0

    def test_peak_tracking(self, device):
        a = device.zeros((50, 50))
        peak1 = device.peak_allocated_bytes
        b = device.zeros((50, 50))
        assert device.peak_allocated_bytes == peak1 + b.nbytes
        a.free()
        b.free()
        assert device.peak_allocated_bytes == peak1 + 10000

    def test_oom(self):
        dev = Device(TINY)  # capacity 1000 bytes
        with pytest.raises(AllocationError, match="OOM"):
            dev.zeros((100, 100))

    def test_free_allows_reuse(self):
        dev = Device(TINY)
        a = dev.zeros((10, 10))  # 400 B of 1000
        a.free()
        b = dev.zeros((15, 15))  # 900 B fits after free
        assert b.nbytes == 900

    def test_double_free_is_idempotent(self, device):
        a = device.zeros((4, 4))
        a.free()
        a.free()
        assert device.allocated_bytes == 0


class TestBuffers:
    def test_use_after_free(self, device):
        a = device.zeros((3, 3))
        a.free()
        with pytest.raises(DeviceError, match="freed"):
            _ = a.a

    def test_wrap_copies_to_contiguous(self, device):
        host = np.asfortranarray(np.ones((4, 5), dtype=np.float32))
        buf = device.wrap(host)
        assert buf.a.flags.c_contiguous

    def test_cross_device_rejected(self):
        d1, d2 = Device(A100_80GB), Device(A100_80GB)
        buf = d1.zeros((2, 2))
        with pytest.raises(DeviceError, match="resident"):
            d2.check_resident(buf)

    def test_non_buffer_rejected(self, device):
        with pytest.raises(DeviceError, match="DeviceArray"):
            device.check_resident(np.ones(3))

    def test_shape_dtype_passthrough(self, device):
        b = device.empty((3, 7), dtype=np.float64)
        assert b.shape == (3, 7)
        assert b.dtype == np.float64


class TestTransfers:
    def test_h2d_copies_and_charges(self, device):
        host = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = device.h2d(host)
        assert np.array_equal(buf.a, host)
        assert device.profiler.count_of("cuda.memcpy_h2d") == 1
        assert device.profiler.time_of("cuda.memcpy_h2d") > 0

    def test_d2h_returns_copy(self, device):
        buf = device.zeros((2, 2))
        out = device.d2h(buf)
        out[0, 0] = 99
        assert buf.a[0, 0] == 0
        assert device.profiler.count_of("cuda.memcpy_d2h") == 1

    def test_transfer_phase_tag(self, device):
        device.h2d(np.ones(4, dtype=np.float32))
        assert device.profiler.phase_times().get("transfer", 0) > 0


class TestDeviceCSR:
    def test_footprint_tracked(self, device, rng):
        m = random_csr(10, 10, 0.3, rng=rng)
        dc = DeviceCSR(device, m)
        assert device.allocated_bytes == dc.nbytes
        dc.free()
        assert device.allocated_bytes == 0

    def test_use_after_free(self, device, rng):
        dc = DeviceCSR(device, random_csr(5, 5, 0.5, rng=rng))
        dc.free()
        with pytest.raises(DeviceError, match="freed"):
            _ = dc.m

    def test_properties(self, device, rng):
        m = random_csr(6, 8, 0.25, rng=rng)
        dc = DeviceCSR(device, m)
        assert dc.shape == (6, 8)
        assert dc.nnz == m.nnz

    def test_cross_device_check(self, rng):
        d1, d2 = Device(A100_80GB), Device(A100_80GB)
        dc = DeviceCSR(d1, random_csr(4, 4, 0.5, rng=rng))
        with pytest.raises(DeviceError):
            dc._check(d2)


class TestClock:
    def test_elapsed_accumulates(self, device):
        assert device.elapsed_s() == 0
        device.h2d(np.ones(1000, dtype=np.float32))
        t1 = device.elapsed_s()
        device.h2d(np.ones(1000, dtype=np.float32))
        assert device.elapsed_s() > t1
