"""Tests for the profiler and the roofline model."""

import pytest

from repro.gpu import (
    A100_80GB,
    Profiler,
    attainable_gflops,
    op_point,
    points_from,
    roofline_series,
)
from repro.gpu.launch import Launch


def mk(name, flops=100.0, bytes_=50.0, t=1e-3, counted=None, phase=""):
    return Launch(name, flops, bytes_, t, counted_flops=counted or 0.0, phase=phase)


class TestProfiler:
    def test_record_and_total(self):
        p = Profiler()
        p.record(mk("a", t=1.0))
        p.record(mk("b", t=2.0))
        assert p.total_time() == pytest.approx(3.0)

    def test_phase_tagging(self):
        p = Profiler()
        with p.phase("alpha"):
            p.record(mk("a", t=1.0))
            with p.phase("beta"):
                p.record(mk("b", t=2.0))
        p.record(mk("c", t=4.0))
        times = p.phase_times()
        assert times["alpha"] == pytest.approx(1.0)
        assert times["beta"] == pytest.approx(2.0)
        assert times["(untagged)"] == pytest.approx(4.0)

    def test_explicit_phase_preserved(self):
        p = Profiler()
        with p.phase("outer"):
            p.record(mk("a", t=1.0, phase="custom"))
        assert p.phase_times() == {"custom": 1.0}

    def test_time_and_count_of(self):
        p = Profiler()
        p.record(mk("x", t=1.0))
        p.record(mk("x", t=2.0))
        p.record(mk("y", t=5.0))
        assert p.time_of("x") == pytest.approx(3.0)
        assert p.count_of("x") == 2
        assert len(p.launches_of("y")) == 1

    def test_achieved_gflops_aggregates(self):
        p = Profiler()
        p.record(mk("x", flops=1e9, t=1.0))
        p.record(mk("x", flops=3e9, t=1.0))
        assert p.achieved_gflops("x") == pytest.approx(2.0)

    def test_achieved_uses_counted_flops(self):
        p = Profiler()
        p.record(mk("x", flops=1e9, t=1.0, counted=2e9))
        assert p.achieved_gflops("x") == pytest.approx(2.0)

    def test_arithmetic_intensity(self):
        p = Profiler()
        p.record(mk("x", flops=100, bytes_=50, t=1.0))
        assert p.arithmetic_intensity("x") == pytest.approx(2.0)

    def test_missing_name_zeroes(self):
        p = Profiler()
        assert p.achieved_gflops("nope") == 0.0
        assert p.arithmetic_intensity("nope") == 0.0
        assert p.time_of("nope") == 0.0

    def test_reset(self):
        p = Profiler()
        p.record(mk("x"))
        p.reset()
        assert p.total_time() == 0.0
        assert p.launches == []

    def test_summary_order_and_fields(self):
        p = Profiler()
        p.record(mk("b", t=1.0))
        p.record(mk("a", t=2.0))
        p.record(mk("b", t=3.0))
        s = p.summary()
        assert [row["name"] for row in s] == ["b", "a"]
        assert s[0]["count"] == 2
        assert s[0]["time_s"] == pytest.approx(4.0)


class TestRoofline:
    def test_attainable_memory_side(self):
        # below the ridge: bandwidth-limited
        ai = 1.0
        assert attainable_gflops(A100_80GB, ai) == pytest.approx(1935.0)

    def test_attainable_compute_side(self):
        assert attainable_gflops(A100_80GB, 1000.0) == pytest.approx(19500.0)

    def test_ridge_continuity(self):
        r = A100_80GB.ridge_ai
        assert attainable_gflops(A100_80GB, r) == pytest.approx(19500.0, rel=1e-6)

    def test_negative_ai_rejected(self):
        with pytest.raises(ValueError):
            attainable_gflops(A100_80GB, -1.0)

    def test_series_monotone_nondecreasing(self):
        series = roofline_series(A100_80GB)
        vals = [v for _, v in series]
        assert all(vals[i] <= vals[i + 1] + 1e-9 for i in range(len(vals) - 1))
        assert vals[-1] == pytest.approx(19500.0)

    def test_op_point_fraction(self):
        p = Profiler()
        # AI = 0.5 -> attainable 967.5; achieved 500 GF/s
        p.record(mk("x", flops=5e11, bytes_=1e12, t=1.0))
        pt = op_point(A100_80GB, p, "x")
        assert pt.arithmetic_intensity == pytest.approx(0.5)
        assert pt.attainable_gflops == pytest.approx(967.5)
        assert pt.fraction_of_roof == pytest.approx(500 / 967.5)

    def test_points_below_roof_for_modeled_ops(self):
        """Physical sanity: modeled ops never beat the roofline...

        ...except hand-written kernels whose *counted* redundant FLOPs can
        exceed the useful-work roofline (the baseline reduction in Fig. 6
        plots with Nsight-counted FLOPs).  Library ops must respect it.
        """
        from repro.gpu import cost

        for l in [
            cost.spmm_cost(A100_80GB, 30000, 100),
            cost.gemm_cost(A100_80GB, 20000, 500),
            cost.dadd_cost(A100_80GB, 30000, 100),
            cost.argmin_cost(A100_80GB, 30000, 100),
        ]:
            roof = attainable_gflops(A100_80GB, l.arithmetic_intensity)
            assert l.achieved_gflops <= roof * 1.001, l.name

    def test_points_from(self):
        pts = points_from(A100_80GB, [mk("a", flops=100, bytes_=50, t=1.0)])
        assert len(pts) == 1
        assert pts[0].name == "a"
