"""Tests pinning the calibrated efficiency curves' shapes.

These are the model's load-bearing monotonicity properties: if a curve's
trend flips, the paper's figure shapes flip with it, so each trend gets an
explicit test tied to the figure it drives.
"""

import pytest

from repro.gpu import calibration as cal


class TestRanges:
    @pytest.mark.parametrize("k", [1, 10, 50, 100, 1000])
    @pytest.mark.parametrize("n", [100, 6400, 50000, 1000000])
    def test_spmm_efficiency_in_unit_interval(self, k, n):
        e = cal.spmm_mem_efficiency(k, n)
        assert 0.0 < e <= 1.0

    @pytest.mark.parametrize("n", [10, 1000, 100000])
    def test_spmv_efficiency_bounds(self, n):
        assert 0.0 < cal.spmv_mem_efficiency(n) <= 1.0

    @pytest.mark.parametrize("n,d", [(100, 10), (50000, 100), (10000, 100000)])
    def test_blas_efficiencies_bounded(self, n, d):
        assert 0.0 < cal.gemm_compute_efficiency(n, d) <= 1.0
        assert 0.0 < cal.syrk_compute_efficiency(n, d) <= 1.0

    def test_fixed_efficiencies(self):
        assert 0 < cal.transform_mem_efficiency() <= 1
        assert 0 < cal.argmin_mem_efficiency() <= 1
        assert 0 < cal.copy_mem_efficiency() <= 1


class TestTrends:
    def test_spmm_efficiency_rises_with_k(self):
        """Fig. 5: Popcorn throughput increases with k."""
        n = 50000
        effs = [cal.spmm_mem_efficiency(k, n) for k in (10, 50, 100)]
        assert effs[0] < effs[1] < effs[2]

    def test_spmm_efficiency_drops_for_small_n(self):
        """Fig. 4: the SCOTUS (n=6400) speedup anomaly."""
        assert cal.spmm_mem_efficiency(50, 6400) < cal.spmm_mem_efficiency(50, 50000)

    def test_baseline_serialization_falls_with_k(self):
        """Fig. 5: baseline throughput *decreases* with k, while its
        time-per-iteration improves (fewer shared-bin conflicts)."""
        s = [cal.baseline_reduction_serialization(k) for k in (10, 50, 100)]
        assert s[0] > s[1] > s[2]
        assert all(x >= 1.0 for x in s)

    def test_baseline_redundancy_falls_with_k(self):
        r = [cal.baseline_counted_redundancy(k) for k in (10, 50, 100)]
        assert r[0] > r[1] > r[2]
        assert all(x >= 1.0 for x in r)

    def test_gemm_efficiency_grows_with_depth(self):
        assert cal.gemm_compute_efficiency(20000, 10) < cal.gemm_compute_efficiency(20000, 1000)

    def test_syrk_skinny_penalty(self):
        """Fig. 2: SYRK efficiency collapses when d << n."""
        skinny = cal.syrk_compute_efficiency(50000, 100)
        square = cal.syrk_compute_efficiency(50000, 50000)
        assert skinny < square / 3

    def test_small_problem_utilization_saturates(self):
        assert cal.small_problem_utilization(100000) > 0.99
        assert cal.small_problem_utilization(6400) < 0.7
        assert cal.small_problem_utilization(1) > 0.0


class TestCalibrationAnchors:
    """Throughput anchors from Fig. 5 (A100, 1935 GB/s)."""

    def _spmm_tput(self, k, n):
        from repro.gpu import A100_80GB, cost

        l = cost.spmm_cost(A100_80GB, n, k)
        return l.achieved_gflops

    def test_popcorn_spmm_band_at_scale(self):
        """Paper: 370-729 GFLOP/s over k in {10,50,100} on large datasets."""
        lo = self._spmm_tput(10, 50000)
        hi = self._spmm_tput(100, 78823)
        assert 330 <= lo <= 450
        assert 600 <= hi <= 760

    def test_baseline_band_at_scale(self):
        """Paper: 304-409 GFLOP/s, decreasing in k."""
        from repro.gpu import A100_80GB, cost

        t10 = cost.baseline_k1_cost(A100_80GB, 50000, 10).achieved_gflops
        t100 = cost.baseline_k1_cost(A100_80GB, 50000, 100).achieved_gflops
        assert 370 <= t10 <= 450
        assert 280 <= t100 <= 340
        assert t100 < t10
