"""Tests for the library shims: blas, cusparse, thrust, raft, custom."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gpu import custom, raft, thrust
from repro.gpu.blas import gemm_gram, gram, syrk_gram
from repro.gpu.cusparse import DeviceCSR, spgemm, spmm_kvt, spmv
from repro.sparse import random_csr, selection_matrix


class TestBlas:
    def test_gemm_gram_numerics(self, device, rng):
        x = rng.standard_normal((12, 5)).astype(np.float64)
        out = gemm_gram(device, device.h2d(x))
        assert np.allclose(out.a, x @ x.T)

    def test_syrk_gram_numerics(self, device, rng):
        x = rng.standard_normal((12, 5)).astype(np.float64)
        out = syrk_gram(device, device.h2d(x))
        assert np.allclose(out.a, x @ x.T)
        # result must be exactly symmetric (mirror copy)
        assert np.array_equal(out.a, out.a.T)

    def test_syrk_records_two_launches(self, device, rng):
        x = rng.standard_normal((8, 3)).astype(np.float32)
        syrk_gram(device, device.h2d(x))
        assert device.profiler.count_of("cublas.syrk") == 1
        assert device.profiler.count_of("custom.triangular_mirror") == 1

    def test_gram_dispatch_helper(self, device, rng):
        x = rng.standard_normal((6, 2)).astype(np.float32)
        p = device.h2d(x)
        assert np.allclose(gram(device, p, "gemm").a, gram(device, p, "syrk").a, rtol=1e-5)

    def test_gram_unknown_method(self, device, rng):
        p = device.h2d(rng.standard_normal((4, 2)).astype(np.float32))
        with pytest.raises(ShapeError, match="unknown gram method"):
            gram(device, p, "magic")

    def test_rejects_1d_buffer(self, device):
        p = device.h2d(np.ones(5, dtype=np.float32))
        with pytest.raises(ShapeError):
            gemm_gram(device, p)


class TestCusparseShims:
    def test_spmm_kvt_matches_dense(self, device, rng):
        n, k = 20, 4
        x = rng.standard_normal((n, 3))
        k_mat = (x @ x.T).astype(np.float64)
        labels = rng.integers(0, k, n)
        v = DeviceCSR(device, selection_matrix(labels, k, dtype=np.float64))
        e = spmm_kvt(device, device.h2d(k_mat), v, alpha=-2.0)
        want = -2.0 * k_mat @ selection_matrix(labels, k, dtype=np.float64).to_dense().T
        assert np.allclose(e.a, want, atol=1e-10)
        assert device.profiler.count_of("cusparse.spmm") == 1

    def test_spmm_kvt_shape_check(self, device, rng):
        v = DeviceCSR(device, selection_matrix(rng.integers(0, 2, 10), 2))
        bad_k = device.zeros((5, 5))
        with pytest.raises(ShapeError):
            spmm_kvt(device, bad_k, v)

    def test_spmv_matches_dense(self, device, rng):
        n, k = 15, 3
        labels = rng.integers(0, k, n)
        v = DeviceCSR(device, selection_matrix(labels, k, dtype=np.float64))
        z = device.h2d(rng.standard_normal(n))
        out = spmv(device, v, z, alpha=-0.5)
        want = -0.5 * selection_matrix(labels, k, dtype=np.float64).to_dense() @ z.a
        assert np.allclose(out.a, want)

    def test_spmv_length_check(self, device, rng):
        v = DeviceCSR(device, selection_matrix(rng.integers(0, 2, 10), 2))
        with pytest.raises(ShapeError):
            spmv(device, v, device.h2d(np.ones(7, dtype=np.float32)))

    def test_spgemm_matches_scipy(self, device, rng):
        a = DeviceCSR(device, random_csr(6, 8, 0.4, rng=rng, dtype=np.float64))
        b = DeviceCSR(device, random_csr(8, 5, 0.4, rng=rng, dtype=np.float64))
        out = spgemm(device, a, b)
        want = (a.m.to_scipy() @ b.m.to_scipy()).toarray()
        assert np.allclose(out.m.to_dense(), want)
        assert device.profiler.count_of("cusparse.spgemm") == 1


class TestThrust:
    def test_transform_in_place(self, device):
        buf = device.wrap(np.full((4, 4), 2.0, dtype=np.float64))
        out = thrust.transform(device, buf, lambda a: a * 3)
        assert out is buf
        assert np.allclose(buf.a, 6.0)

    def test_transform_out_of_place(self, device):
        buf = device.wrap(np.ones((3, 3), dtype=np.float64))
        out = thrust.transform(device, buf, lambda a: a + 1, in_place=False)
        assert out is not buf
        assert np.allclose(buf.a, 1.0)
        assert np.allclose(out.a, 2.0)

    def test_transform_shape_change_rejected(self, device):
        buf = device.wrap(np.ones((3, 3), dtype=np.float64))
        with pytest.raises(ShapeError):
            thrust.transform(device, buf, lambda a: a[:2])

    def test_transform_nonsquare_charges(self, device):
        buf = device.wrap(np.ones((2, 8), dtype=np.float32))
        thrust.transform(device, buf, lambda a: a)
        assert device.profiler.count_of("thrust.transform") == 1

    def test_bincount(self, device):
        labels = np.array([0, 1, 1, 3], dtype=np.int32)
        counts = thrust.bincount(device, labels, 5)
        assert np.array_equal(counts, [1, 2, 0, 1, 0])
        assert device.profiler.count_of("thrust.reduce_counts") == 1


class TestRaft:
    def test_argmin_rows(self, device, rng):
        d = rng.standard_normal((10, 4))
        buf = device.h2d(d)
        labels = raft.coalesced_reduction_argmin(device, buf)
        assert np.array_equal(labels, np.argmin(d, axis=1))
        assert labels.dtype == np.int32

    def test_argmin_tie_breaks_low(self, device):
        d = np.array([[1.0, 1.0, 2.0]], dtype=np.float32)
        buf = device.h2d(d)
        assert raft.coalesced_reduction_argmin(device, buf)[0] == 0

    def test_argmin_needs_2d(self, device):
        with pytest.raises(ShapeError):
            raft.coalesced_reduction_argmin(device, device.h2d(np.ones(4, dtype=np.float32)))


class TestCustomKernels:
    def test_v_build(self, device, rng):
        labels = rng.integers(0, 3, 20).astype(np.int32)
        v = custom.v_build(device, labels, 3)
        assert v.shape == (3, 20)
        assert v.nnz == 20
        assert device.profiler.count_of("custom.v_build") == 1

    def test_z_gather(self, device, rng):
        e = rng.standard_normal((8, 3))
        labels = rng.integers(0, 3, 8).astype(np.int32)
        z = custom.z_gather(device, device.h2d(e), labels)
        assert np.allclose(z.a, e[np.arange(8), labels])

    def test_d_add_broadcasts(self, device, rng):
        e = rng.standard_normal((6, 4))
        p = rng.standard_normal(6)
        c = rng.standard_normal(4)
        eb = device.h2d(e.copy())
        out = custom.d_add(device, eb, device.h2d(p), device.h2d(c))
        assert out is eb  # in place
        assert np.allclose(eb.a, e + p[:, None] + c[None, :])

    def test_d_add_shape_mismatch(self, device, rng):
        eb = device.h2d(rng.standard_normal((6, 4)))
        with pytest.raises(ShapeError):
            custom.d_add(device, eb, device.h2d(np.ones(5)), device.h2d(np.ones(4)))

    def test_diag_extract(self, device, rng):
        m = rng.standard_normal((5, 5))
        out = custom.diag_extract(device, device.h2d(m))
        assert np.allclose(out.a, np.diagonal(m))

    def test_diag_extract_requires_square(self, device, rng):
        with pytest.raises(ShapeError):
            custom.diag_extract(device, device.h2d(rng.standard_normal((3, 4))))


class TestBaselineKernels:
    def test_cluster_reduce(self, device, rng):
        n, k = 15, 3
        k_mat = rng.standard_normal((n, n))
        labels = rng.integers(0, k, n).astype(np.int32)
        r = custom.baseline_cluster_reduce(device, device.h2d(k_mat), labels, k)
        want = np.zeros((n, k))
        for j in range(k):
            want[:, j] = k_mat[:, labels == j].sum(axis=1)
        assert np.allclose(r.a, want, atol=1e-5)

    def test_centroid_norms_match_definition(self, device, rng):
        n, k = 20, 4
        x = rng.standard_normal((n, 3))
        k_mat = x @ x.T
        labels = rng.integers(0, k, n).astype(np.int32)
        counts = np.bincount(labels, minlength=k)
        r = custom.baseline_cluster_reduce(device, device.h2d(k_mat), labels, k)
        cn = custom.baseline_centroid_norms(device, r, labels, counts)
        # reference: ||c_j||^2 via explicit centroids (linear kernel)
        want = np.zeros(k)
        for j in range(k):
            if counts[j]:
                want[j] = (x[labels == j].mean(axis=0) ** 2).sum()
        assert np.allclose(cn.a, want, atol=1e-5)

    def test_distance_assemble_matches_reference(self, device, rng):
        from repro.core import distance_matrix_reference

        n, k = 18, 3
        x = rng.standard_normal((n, 2))
        k_mat = (x @ x.T).astype(np.float64)
        labels = rng.integers(0, k, n).astype(np.int32)
        counts = np.bincount(labels, minlength=k)
        r = custom.baseline_cluster_reduce(device, device.h2d(k_mat), labels, k)
        cn = custom.baseline_centroid_norms(device, r, labels, counts)
        kd = device.h2d(np.ascontiguousarray(np.diagonal(k_mat)))
        d = custom.baseline_distance_assemble(device, r, kd, cn, counts)
        want = distance_matrix_reference(k_mat, labels, k)
        assert np.allclose(d.a, want, atol=1e-8)
