"""Explicit FLOP/byte accounting tests for the cost model.

The paper's Sec. 4.4 fixes the traffic accounting (FP32 values, 32-bit
indices); these tests pin each cost function's arithmetic so an
accidental change to a formula — which would silently shift every figure
— fails loudly.
"""

import pytest

from repro.gpu import A100_80GB, cost
from repro.gpu.calibration import SPMM_TRAFFIC_FACTOR


class TestKernelMatrixPhaseAccounting:
    def test_gemm_bytes(self):
        n, d = 1000, 50
        l = cost.gemm_cost(A100_80GB, n, d)
        assert l.bytes == 4 * (2 * n * d + n * n)

    def test_syrk_bytes_half_output(self):
        n, d = 1000, 50
        l = cost.syrk_cost(A100_80GB, n, d)
        assert l.bytes == 4 * (n * d + 0.5 * n * n)

    def test_mirror_copy_is_one_full_matrix_of_traffic(self):
        n = 2000
        l = cost.triangular_copy_cost(A100_80GB, n)
        assert l.bytes == 4.0 * n * n  # half read + half written
        assert l.flops == 0.0

    def test_transform_reads_and_writes_k(self):
        n = 500
        l = cost.kernel_transform_cost(A100_80GB, n, 4.0)
        assert l.bytes == 4 * 2 * n * n
        assert l.flops == 4.0 * n * n


class TestDistancePhaseAccounting:
    def test_spmm_traffic_includes_inflation(self):
        n, k = 10000, 50
        l = cost.spmm_cost(A100_80GB, n, k)
        expected = 4 * (SPMM_TRAFFIC_FACTOR * n * n + n * k + n) + 4 * (2 * n + k + 1)
        assert l.bytes == pytest.approx(expected)

    def test_spmm_useful_flops(self):
        n, k = 10000, 50
        assert cost.spmm_cost(A100_80GB, n, k).flops == 2.0 * n * n

    def test_spmv_linear_traffic(self):
        n, k = 10000, 50
        l = cost.spmv_cost(A100_80GB, n, k)
        assert l.flops == 2.0 * n
        assert l.bytes == 4 * (2 * n + k) + 4 * (2 * n + k + 1)

    def test_dadd_traffic(self):
        n, k = 10000, 50
        l = cost.dadd_cost(A100_80GB, n, k)
        assert l.bytes == 4 * (2 * n * k + n + k)
        assert l.flops == 2.0 * n * k

    def test_argmin_traffic(self):
        n, k = 10000, 50
        l = cost.argmin_cost(A100_80GB, n, k)
        assert l.bytes == 4 * (n * k + n)

    def test_zgather_uncoalesced_sectors(self):
        n, k = 10000, 50
        l = cost.zgather_cost(A100_80GB, n, k)
        assert l.bytes == 32.0 * n + 4 * 2.0 * n


class TestBaselineAccounting:
    def test_k1_same_useful_flops_as_spmm(self):
        n, k = 10000, 50
        assert (
            cost.baseline_k1_cost(A100_80GB, n, k).flops
            == cost.spmm_cost(A100_80GB, n, k).flops
        )

    def test_k1_counted_flops_redundancy(self):
        from repro.gpu.calibration import baseline_counted_redundancy

        n, k = 10000, 50
        l = cost.baseline_k1_cost(A100_80GB, n, k)
        assert l.counted_flops == pytest.approx(
            2.0 * n * n * baseline_counted_redundancy(k)
        )

    def test_k3_matches_dadd_structure(self):
        n, k = 10000, 50
        k3 = cost.baseline_k3_cost(A100_80GB, n, k)
        dadd = cost.dadd_cost(A100_80GB, n, k)
        assert k3.bytes == dadd.bytes
        assert k3.flops == dadd.flops


class TestTransferAccounting:
    def test_h2d_linear_in_bytes(self):
        l1 = cost.h2d_cost(A100_80GB, 1e6)
        l2 = cost.h2d_cost(A100_80GB, 2e6)
        fixed = 1.0e-5
        assert (l2.time_s - fixed) == pytest.approx(2 * (l1.time_s - fixed))

    def test_d2h_equals_h2d(self):
        assert cost.d2h_cost(A100_80GB, 5e6).time_s == pytest.approx(
            cost.h2d_cost(A100_80GB, 5e6).time_s
        )


class TestCpuAccounting:
    def test_gram_flops(self):
        from repro.gpu import EPYC_7763

        n, d = 5000, 100
        l = cost.cpu_gram_cost(EPYC_7763, n, d)
        assert l.flops == 2.0 * n * n * d

    def test_iteration_k_linear_overhead(self):
        from repro.gpu import EPYC_7763

        n = 5000
        t10 = cost.cpu_iteration_cost(EPYC_7763, n, 10).time_s
        t110 = cost.cpu_iteration_cost(EPYC_7763, n, 110).time_s
        # the difference is dominated by the per-cluster overhead term
        diff = t110 - t10
        assert diff == pytest.approx(
            100 * EPYC_7763.per_cluster_overhead_s
            + (4.0 * n * 100) / (EPYC_7763.scalar_gflops * 1e9),
            rel=1e-6,
        )
