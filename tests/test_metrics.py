"""Tests for the clustering metrics (from-scratch implementations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.eval import (
    adjusted_rand_index,
    assert_monotone,
    cluster_sizes_ok,
    clustering_accuracy,
    contingency_table,
    normalized_mutual_info,
    purity,
    relative_decrease,
)
from repro.errors import ConvergenceError


class TestContingency:
    def test_counts(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 1])
        c = contingency_table(a, b)
        assert c.tolist() == [[0, 2], [1, 1]]

    def test_sparse_label_ids(self):
        a = np.array([5, 5, 100])
        b = np.array([0, 0, 1])
        c = contingency_table(a, b)
        assert c.shape == (2, 2)
        assert c.sum() == 3

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            contingency_table(np.array([0]), np.array([0, 1]))

    def test_empty(self):
        with pytest.raises(ShapeError):
            contingency_table(np.array([], dtype=int), np.array([], dtype=int))


class TestARI:
    def test_identical_partitions(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_known_value(self):
        # classic example: ARI of [0,0,1,1] vs [0,1,0,1] is negative-ish/zero
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(-0.5)

    def test_single_cluster_each(self):
        a = np.zeros(5, dtype=int)
        assert adjusted_rand_index(a, a) == 1.0

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, 30)
        b = rng.integers(0, 4, 30)
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    @given(st.lists(st.integers(0, 3), min_size=4, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, labels):
        a = np.asarray(labels)
        rng = np.random.default_rng(0)
        b = rng.integers(0, 3, len(labels))
        v = adjusted_rand_index(a, b)
        assert -1.0 <= v <= 1.0


class TestNMI:
    def test_identical(self):
        a = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_info(a, a) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 2, 5000)
        b = rng.integers(0, 2, 5000)
        assert normalized_mutual_info(a, b) < 0.01

    def test_single_cluster_degenerate(self):
        a = np.zeros(5, dtype=int)
        assert normalized_mutual_info(a, a) == 1.0

    def test_bounded(self, rng):
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 3, 100)
        assert 0.0 <= normalized_mutual_info(a, b) <= 1.0

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert normalized_mutual_info(a, b) == pytest.approx(1.0)


class TestPurityAccuracy:
    def test_purity_perfect(self):
        a = np.array([0, 0, 1, 1])
        assert purity(a, a) == 1.0

    def test_purity_majority(self):
        pred = np.array([0, 0, 0, 1])
        truth = np.array([0, 0, 1, 1])
        assert purity(pred, truth) == pytest.approx(0.75)

    def test_accuracy_with_permutation(self):
        pred = np.array([1, 1, 0, 0])
        truth = np.array([0, 0, 1, 1])
        assert clustering_accuracy(pred, truth) == 1.0

    def test_accuracy_unequal_cluster_counts(self):
        pred = np.array([0, 1, 2, 2])
        truth = np.array([0, 0, 1, 1])
        assert clustering_accuracy(pred, truth) == pytest.approx(0.75)

    def test_accuracy_at_least_purity_when_square(self, rng):
        pred = rng.integers(0, 3, 60)
        truth = rng.integers(0, 3, 60)
        assert clustering_accuracy(pred, truth) <= purity(pred, truth) + 1e-12


class TestValidationHelpers:
    def test_assert_monotone_ok(self):
        assert_monotone([10.0, 9.0, 9.0, 8.5])

    def test_assert_monotone_tolerates_roundoff(self):
        assert_monotone([10.0, 10.0 + 1e-7], rel_tol=1e-5)

    def test_assert_monotone_raises(self):
        with pytest.raises(ConvergenceError):
            assert_monotone([10.0, 11.0])

    def test_relative_decrease(self):
        assert relative_decrease([10.0, 5.0]) == pytest.approx(0.5)
        assert relative_decrease([10.0]) == 0.0

    def test_cluster_sizes_ok(self):
        assert cluster_sizes_ok(np.array([0, 1, 1]), 2, min_size=1)
        assert not cluster_sizes_ok(np.array([0, 0]), 2, min_size=1)
