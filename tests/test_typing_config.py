"""Tests for validation helpers, configuration, and the error hierarchy."""

import numpy as np
import pytest

from repro import Config, DEFAULT_CONFIG
from repro._typing import (
    as_float_dtype,
    as_index_vector,
    as_matrix,
    as_vector,
    check_labels,
    check_square,
)
from repro.errors import (
    AllocationError,
    ConfigError,
    ConvergenceError,
    DatasetError,
    DeviceError,
    DTypeError,
    ReproError,
    ShapeError,
    SparseFormatError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ShapeError, DTypeError, SparseFormatError, DeviceError,
        AllocationError, ConvergenceError, ConfigError, DatasetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_dual_inheritance(self):
        assert issubclass(ShapeError, ValueError)
        assert issubclass(DTypeError, TypeError)
        assert issubclass(DeviceError, RuntimeError)
        assert issubclass(AllocationError, DeviceError)


class TestTypingHelpers:
    def test_as_float_dtype_accepts(self):
        assert as_float_dtype(np.float32) == np.dtype(np.float32)
        assert as_float_dtype("float64") == np.dtype(np.float64)

    def test_as_float_dtype_rejects(self):
        with pytest.raises(DTypeError):
            as_float_dtype(np.int32)
        with pytest.raises(DTypeError):
            as_float_dtype(np.float16)

    def test_as_matrix_contiguous(self):
        a = np.asfortranarray(np.ones((3, 4)))
        m = as_matrix(a)
        assert m.flags.c_contiguous

    def test_as_matrix_keeps_float32(self):
        assert as_matrix(np.ones((2, 2), dtype=np.float32)).dtype == np.float32

    def test_as_matrix_promotes_ints(self):
        assert as_matrix(np.ones((2, 2), dtype=np.int64)).dtype == np.float64

    def test_as_matrix_rejects_1d(self):
        with pytest.raises(ShapeError):
            as_matrix(np.ones(3))

    def test_as_vector(self):
        v = as_vector([1.0, 2.0])
        assert v.shape == (2,)
        with pytest.raises(ShapeError):
            as_vector(np.ones((2, 2)))

    def test_as_index_vector_integral_floats(self):
        v = as_index_vector(np.array([0.0, 2.0]))
        assert v.dtype == np.int32

    def test_as_index_vector_rejects_fractional(self):
        with pytest.raises(DTypeError):
            as_index_vector(np.array([0.5, 1.0]))

    def test_check_square(self):
        check_square(np.ones((3, 3)))
        with pytest.raises(ShapeError):
            check_square(np.ones((3, 4)))

    def test_check_labels(self):
        lab = check_labels(np.array([0, 1, 2]), 3, 3)
        assert lab.dtype == np.int32
        with pytest.raises(ShapeError):
            check_labels(np.array([0, 1]), 3, 3)  # wrong length
        with pytest.raises(ShapeError):
            check_labels(np.array([0, 1, 5]), 3, 3)  # out of range


class TestConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.dtype == np.dtype(np.float32)
        assert DEFAULT_CONFIG.gemm_syrk_threshold == 100.0
        assert DEFAULT_CONFIG.max_iter == 30

    def test_with_replaces(self):
        c = DEFAULT_CONFIG.with_(max_iter=5)
        assert c.max_iter == 5
        assert DEFAULT_CONFIG.max_iter == 30

    def test_validation(self):
        with pytest.raises(ConfigError):
            Config(gemm_syrk_threshold=0)
        with pytest.raises(ConfigError):
            Config(max_iter=0)
        with pytest.raises(ConfigError):
            Config(tol=-1)
        with pytest.raises(DTypeError):
            Config(dtype=np.int8)

    def test_rng(self):
        a = DEFAULT_CONFIG.rng(5).integers(0, 100, 10)
        b = DEFAULT_CONFIG.rng(5).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_package_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert hasattr(repro, "PopcornKernelKMeans")
        assert hasattr(repro, "DistributedPopcornKernelKMeans")
