"""End-to-end integration tests across the whole stack."""

import numpy as np

from repro import (
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    LloydKMeans,
    NystromKernelKMeans,
    PopcornKernelKMeans,
    PRMLTKernelKMeans,
)
from repro.baselines import random_labels
from repro.data import generate, make_blobs, make_circles, make_moons
from repro.eval import adjusted_rand_index, assert_monotone, normalized_mutual_info
from repro.gpu import A100_80GB, Device
from repro.kernels import GaussianKernel, PolynomialKernel


class TestNonlinearShowcase:
    """The paper's core motivation, end to end."""

    def test_kernel_kmeans_beats_lloyd_on_circles(self):
        x, y = make_circles(500, rng=1)
        kk = PopcornKernelKMeans(
            2, kernel=GaussianKernel(gamma=5.0), seed=0, max_iter=100
        ).fit(x)
        ll = LloydKMeans(2, seed=0).fit(x)
        kk_ari = adjusted_rand_index(kk.labels_, y)
        ll_ari = adjusted_rand_index(ll.labels_, y)
        assert kk_ari > 0.95
        assert ll_ari < 0.3
        assert kk_ari > ll_ari + 0.5

    def test_all_engines_agree_on_circles(self):
        x, y = make_circles(200, rng=4)
        kern = GaussianKernel(gamma=5.0)
        init = random_labels(200, 2, np.random.default_rng(0))
        kwargs = dict(kernel=kern, max_iter=40, check_convergence=False)
        pop = PopcornKernelKMeans(2, dtype=np.float64, **kwargs).fit(x, init_labels=init)
        cuda = BaselineCUDAKernelKMeans(2, dtype=np.float64, **kwargs).fit(x, init_labels=init)
        cpu = PRMLTKernelKMeans(2, kernel=kern, max_iter=40, check_convergence=False).fit(
            x, init_labels=init
        )
        dist = DistributedPopcornKernelKMeans(
            2, n_devices=3, dtype=np.float64, **kwargs
        ).fit(x, init_labels=init)
        assert np.array_equal(pop.labels_, cuda.labels_)
        assert np.array_equal(pop.labels_, cpu.labels_)
        assert np.array_equal(pop.labels_, dist.labels_)

    def test_nystrom_approximates_exact(self):
        x, y = make_circles(500, rng=1)
        exact = PopcornKernelKMeans(
            2, kernel=GaussianKernel(gamma=5.0), seed=0, max_iter=100
        ).fit(x)
        approx = NystromKernelKMeans(
            2, n_landmarks=120, kernel=GaussianKernel(gamma=5.0), seed=0
        ).fit(x)
        assert adjusted_rand_index(exact.labels_, y) > 0.95
        assert adjusted_rand_index(approx.labels_, y) > 0.95
        assert normalized_mutual_info(exact.labels_, approx.labels_) > 0.9


class TestFullPipelineHealth:
    def test_table2_standin_clusters(self):
        """A scaled Table 2 stand-in flows through the full pipeline."""
        x, y = generate("mnist", scale=0.005, rng=0, k=5)  # 300 x 4
        m = PopcornKernelKMeans(5, seed=0, init="k-means++", max_iter=40).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.5

    def test_objective_monotone_on_moons(self):
        x, _ = make_moons(300, rng=3)
        m = PopcornKernelKMeans(
            2, kernel=GaussianKernel(gamma=10.0), seed=0, max_iter=50, dtype=np.float64
        ).fit(x)
        assert_monotone(m.objective_history_)

    def test_no_device_memory_leak_across_fits(self):
        dev = Device(A100_80GB)
        x, _, = make_blobs(80, 4, 3, rng=2)
        for seed in range(3):
            PopcornKernelKMeans(3, device=dev, seed=seed, max_iter=5).fit(x)
        assert dev.allocated_bytes == 0

    def test_profiler_accumulates_across_fits_on_shared_device(self):
        dev = Device(A100_80GB)
        x, _ = make_blobs(60, 3, 2, rng=1)
        PopcornKernelKMeans(2, device=dev, seed=0, max_iter=2, check_convergence=False).fit(x)
        count1 = dev.profiler.count_of("cusparse.spmm")
        PopcornKernelKMeans(2, device=dev, seed=1, max_iter=2, check_convergence=False).fit(x)
        assert dev.profiler.count_of("cusparse.spmm") == 2 * count1

    def test_spmm_count_equals_iterations(self):
        x, _ = make_blobs(70, 4, 3, rng=5)
        m = PopcornKernelKMeans(3, seed=0, max_iter=30).fit(x)
        assert m.device_.profiler.count_of("cusparse.spmm") == m.n_iter_

    def test_paper_default_run_shape(self):
        """The paper's protocol: 30 fixed iterations, polynomial kernel."""
        x, _ = make_blobs(100, 6, 10, rng=8)
        m = PopcornKernelKMeans(
            10, kernel=PolynomialKernel(gamma=1.0, coef0=1.0, degree=2),
            max_iter=30, check_convergence=False, seed=0,
        ).fit(x)
        assert m.n_iter_ == 30
        assert len(m.objective_history_) == 30
