"""Failure-injection tests: resource exhaustion and corrupted inputs.

A production library must fail loudly and consistently, not mid-run with
a corrupted allocator.  These tests drive the estimators into device OOM,
capacity pre-checks, and malformed numerical inputs.
"""

import numpy as np
import pytest

from repro import PopcornKernelKMeans
from repro.baselines import BaselineCUDAKernelKMeans
from repro.data import make_blobs
from repro.errors import AllocationError, ShapeError
from repro.gpu import Device, DeviceSpec

TINY = DeviceSpec("tiny-gpu", peak_fp32_gflops=19500, mem_bw_gbps=1935, mem_capacity_gb=1e-4)


class TestCapacityPrecheck:
    def test_oversized_problem_raises_with_guidance(self):
        """n^2 kernel matrix beyond capacity -> actionable error up front."""
        x, _ = make_blobs(300, 4, 3, rng=0)  # K = 360 KB > 100 KB capacity
        with pytest.raises(AllocationError, match="Distributed"):
            PopcornKernelKMeans(3, device=TINY, seed=0).fit(x)

    def test_error_mentions_sizes(self):
        x, _ = make_blobs(300, 4, 3, rng=0)
        with pytest.raises(AllocationError, match="GB"):
            PopcornKernelKMeans(3, device=TINY).fit(x)

    def test_fitting_within_capacity_succeeds(self):
        spec = DeviceSpec("small-gpu", peak_fp32_gflops=19500, mem_bw_gbps=1935,
                          mem_capacity_gb=0.01)
        x, _ = make_blobs(100, 4, 3, rng=0)  # K = 40 KB << 10 MB
        m = PopcornKernelKMeans(3, device=spec, seed=0, max_iter=3).fit(x)
        assert m.labels_.shape == (100,)

    def test_allocator_clean_after_precheck_failure(self):
        dev = Device(TINY)
        x, _ = make_blobs(300, 4, 3, rng=0)
        with pytest.raises(AllocationError):
            PopcornKernelKMeans(3, device=dev).fit(x)
        assert dev.allocated_bytes == 0

    def test_baseline_oom_mid_run(self):
        """The baseline has no pre-check; it must still fail cleanly."""
        dev = Device(TINY)
        x, _ = make_blobs(300, 4, 3, rng=0)
        with pytest.raises(AllocationError):
            BaselineCUDAKernelKMeans(3, device=dev, seed=0).fit(x)


class TestMalformedInputs:
    def test_nan_input_produces_nan_free_error_or_labels(self):
        """NaNs must not crash the pipeline with an obscure error."""
        x = np.full((20, 3), np.nan, dtype=np.float32)
        # the distance matrix degenerates; argmin still yields labels —
        # verify we at least terminate and return the right shapes
        m = PopcornKernelKMeans(2, seed=0, max_iter=3, check_convergence=False).fit(x)
        assert m.labels_.shape == (20,)

    def test_zero_variance_data(self):
        x = np.ones((30, 4), dtype=np.float32)
        m = PopcornKernelKMeans(3, seed=0, max_iter=5).fit(x)
        # all points identical: every assignment is optimal, objective 0
        assert m.objective_ == pytest.approx(0.0, abs=1e-4)

    def test_single_point_per_cluster(self):
        x = np.arange(12, dtype=np.float32).reshape(4, 3) * 10
        m = PopcornKernelKMeans(4, seed=0, max_iter=5).fit(x)
        assert sorted(np.bincount(m.labels_, minlength=4)) == [1, 1, 1, 1]

    def test_k_equals_one(self):
        x, _ = make_blobs(50, 3, 2, rng=1)
        m = PopcornKernelKMeans(1, seed=0, max_iter=5).fit(x)
        assert np.all(m.labels_ == 0)

    def test_3d_input_rejected(self):
        with pytest.raises(ShapeError):
            PopcornKernelKMeans(2).fit(np.zeros((4, 3, 2), dtype=np.float32))

    def test_empty_input_rejected(self):
        with pytest.raises(Exception):
            PopcornKernelKMeans(2).fit(np.zeros((0, 3), dtype=np.float32))
