"""Tests for the paper-scale analytical models.

The key contract: for sizes small enough to execute, the analytical model
and the executing estimator produce the **same launch log** — same names,
same FLOPs, same bytes, same modeled time, launch for launch.  That's
what lets the figure benches run at paper scale without materialising
50000 x 50000 matrices.
"""

import numpy as np
import pytest

from repro.baselines import BaselineCUDAKernelKMeans, random_labels
from repro.core import PopcornKernelKMeans
from repro.errors import ConfigError
from repro.gpu import A100_80GB
from repro.modeling import model_baseline, model_cpu, model_gram, model_popcorn


def _exec_launches(prof, skip=("cuda.memcpy_h2d", "cuda.memcpy_d2h")):
    return [l for l in prof.launches if l.name not in skip]


class TestModelMatchesExecution:
    def test_popcorn_launch_for_launch(self, rng):
        n, d, k, iters = 48, 6, 3, 4
        x = rng.standard_normal((n, d)).astype(np.float32)
        init = random_labels(n, k, rng)
        est = PopcornKernelKMeans(
            k, max_iter=iters, check_convergence=False, gram_method="auto"
        ).fit(x, init_labels=init)
        modeled = model_popcorn(n, d, k, iters=iters, include_transfer=False)
        got = _exec_launches(est.device_.profiler)
        want = _exec_launches(modeled.profiler)
        assert [l.name for l in got] == [l.name for l in want]
        for a, b in zip(got, want):
            assert a.flops == pytest.approx(b.flops), a.name
            assert a.bytes == pytest.approx(b.bytes), a.name
            assert a.time_s == pytest.approx(b.time_s), a.name

    def test_baseline_launch_for_launch(self, rng):
        n, d, k, iters = 40, 5, 4, 3
        x = rng.standard_normal((n, d)).astype(np.float32)
        init = random_labels(n, k, rng)
        est = BaselineCUDAKernelKMeans(k, max_iter=iters, check_convergence=False).fit(
            x, init_labels=init
        )
        modeled = model_baseline(n, d, k, iters=iters, include_transfer=False)
        got = _exec_launches(est.device_.profiler)
        want = _exec_launches(modeled.profiler)
        assert [l.name for l in got] == [l.name for l in want]
        for a, b in zip(got, want):
            assert a.time_s == pytest.approx(b.time_s), a.name

    def test_phase_times_match(self, rng):
        n, d, k, iters = 36, 4, 3, 3
        x = rng.standard_normal((n, d)).astype(np.float32)
        est = PopcornKernelKMeans(k, max_iter=iters, check_convergence=False).fit(
            x, init_labels=random_labels(n, k, rng)
        )
        modeled = model_popcorn(n, d, k, iters=iters, include_transfer=False)
        for phase in ("kernel_matrix", "distances", "argmin_update"):
            assert est.timings_[phase] == pytest.approx(modeled.phase_s(phase)), phase


class TestModelShapes:
    """The paper's headline bands, asserted at paper scale."""

    DATASETS = {
        "acoustic": (78823, 50),
        "cifar10": (50000, 3072),
        "ledgar": (70000, 19996),
        "letter": (10500, 26),
        "mnist": (60000, 780),
        "scotus": (6400, 126405),
    }

    def test_fig3_band(self):
        """Baseline CUDA over CPU: 10x-80x, increasing with k."""
        for name, (n, d) in self.DATASETS.items():
            speedups = []
            for k in (10, 50, 100):
                s = model_cpu(n, d, k).total_s / model_baseline(n, d, k).total_s
                assert 10 <= s <= 80, (name, k, s)
                speedups.append(s)
            assert speedups[0] < speedups[2], name

    def test_fig3_letter_is_max(self):
        best = {
            name: max(
                model_cpu(n, d, k).total_s / model_baseline(n, d, k).total_s
                for k in (10, 50, 100)
            )
            for name, (n, d) in self.DATASETS.items()
        }
        assert max(best, key=best.get) == "letter"
        assert 55 <= best["letter"] <= 80  # paper: 72.8x

    def test_fig4_band(self):
        """Popcorn distance phase over baseline: 1.5-2.6x on large sets,
        collapsing for SCOTUS (n = 6400)."""
        for name, (n, d) in self.DATASETS.items():
            for k in (10, 50, 100):
                s = (
                    model_baseline(n, d, k).phase_s("distances")
                    / model_popcorn(n, d, k).phase_s("distances")
                )
                if name == "scotus":
                    assert s < 1.5, (name, k, s)
                else:
                    assert 1.4 <= s <= 2.7, (name, k, s)

    def test_fig5_throughput_bands_and_trends(self):
        n, d = 50000, 3072
        pop, base = [], []
        for k in (10, 50, 100):
            pop.append(model_popcorn(n, d, k).profiler.achieved_gflops("cusparse.spmm"))
            base.append(
                model_baseline(n, d, k).profiler.achieved_gflops("baseline.k1_cluster_reduce")
            )
        assert pop[0] < pop[1] < pop[2]  # rises with k
        assert base[0] > base[1] > base[2]  # falls with k
        assert 330 <= pop[0] and pop[2] <= 760  # paper: 370-729
        assert 280 <= base[2] and base[0] <= 450  # paper: 304-409

    def test_fig7_band(self):
        """End-to-end Popcorn over baseline: 1.4-2.7x everywhere."""
        for name, (n, d) in self.DATASETS.items():
            for k in (10, 50, 100):
                s = model_baseline(n, d, k).total_s / model_popcorn(n, d, k).total_s
                assert 1.4 <= s <= 2.7, (name, k, s)

    def test_fig8_breakdown_shapes(self):
        """Large d => kernel matrix dominates; large n small d => distances."""
        for name in ("ledgar", "scotus"):
            n, d = self.DATASETS[name]
            m = model_popcorn(n, d, 100)
            assert m.phase_s("kernel_matrix") > m.phase_s("distances"), name
        for name in ("acoustic", "letter"):
            n, d = self.DATASETS[name]
            m = model_popcorn(n, d, 100)
            assert m.phase_s("distances") > m.phase_s("kernel_matrix"), name

    def test_fig8_argmin_trivial(self):
        """'the cost of updating cluster assignments is trivial' (Sec. 5.7)."""
        for name, (n, d) in self.DATASETS.items():
            m = model_popcorn(n, d, 100)
            assert m.phase_s("argmin_update") < 0.12 * m.total_s, name

    def test_fig2_winner_flip(self):
        from repro.kernels import model_gram_times

        t_large_ratio = model_gram_times(A100_80GB, 50000, 100)
        t_small_ratio = model_gram_times(A100_80GB, 10000, 10000)
        assert t_large_ratio["gemm"] < t_large_ratio["syrk"]
        assert t_small_ratio["syrk"] < t_small_ratio["gemm"]


class TestModelInterface:
    def test_model_gram_methods(self):
        g = model_gram(A100_80GB, 1000, 100, "gemm")
        assert g.count_of("cublas.gemm") == 1
        s = model_gram(A100_80GB, 1000, 100, "syrk")
        assert s.count_of("cublas.syrk") == 1
        assert s.count_of("custom.triangular_mirror") == 1

    def test_model_gram_bad_method(self):
        with pytest.raises(ConfigError):
            model_gram(A100_80GB, 100, 10, "magic")

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            model_popcorn(0, 5, 2)
        with pytest.raises(ConfigError):
            model_popcorn(10, 5, 20)  # k > n
        with pytest.raises(ConfigError):
            model_baseline(10, 0, 2)

    def test_runmodel_accessors(self):
        m = model_popcorn(1000, 50, 10, iters=5)
        assert m.total_s > 0
        assert m.phase_s("distances") > 0
        assert m.phase_s("nonexistent") == 0.0
        assert m.n == 1000 and m.iters == 5

    def test_transfer_toggle(self):
        with_t = model_popcorn(1000, 50, 10, include_transfer=True)
        without = model_popcorn(1000, 50, 10, include_transfer=False)
        assert with_t.total_s > without.total_s

    def test_iterations_scale_distance_phase(self):
        m1 = model_popcorn(5000, 50, 10, iters=10)
        m2 = model_popcorn(5000, 50, 10, iters=20)
        assert m2.phase_s("distances") == pytest.approx(2 * m1.phase_s("distances"))
