"""Cross-cutting regression tests for behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro import PopcornKernelKMeans, DistributedPopcornKernelKMeans
from repro.baselines import random_labels
from repro.core import OnTheFlyKernelKMeans, build_selection
from repro.data import generate, make_blobs
from repro.kernels import PolynomialKernel
from repro.sparse import from_dense, spmm


class TestEstimatorBookkeeping:
    def test_objective_is_last_history_entry(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0).fit(x)
        assert m.objective_ == m.objective_history_[-1]

    def test_convergence_reason_strings(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=200).fit(x)
        assert m.convergence_reason_ in ("assignments stable",
                                         "objective improvement below tol")

    def test_timings_sum_equals_device_clock(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=5, check_convergence=False).fit(x)
        assert sum(m.timings_.values()) == pytest.approx(m.device_.elapsed_s())

    def test_refit_overwrites_results(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=3, check_convergence=False)
        m.fit(x)
        first = m.labels_.copy()
        m.fit(x[:60])
        assert m.labels_.shape == (60,)
        assert first.shape == (90,)

    def test_n_iter_counts_history(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=50).fit(x)
        assert len(m.objective_history_) == m.n_iter_


class TestDistributedEdges:
    def test_one_row_per_device(self, rng):
        x = rng.standard_normal((8, 3)).astype(np.float64)
        init = random_labels(8, 2, rng)
        d = DistributedPopcornKernelKMeans(
            2, n_devices=8, dtype=np.float64, max_iter=4, check_convergence=False
        ).fit(x, init_labels=init)
        s = PopcornKernelKMeans(
            2, dtype=np.float64, max_iter=4, check_convergence=False
        ).fit(x, init_labels=init)
        assert np.array_equal(d.labels_, s.labels_)

    def test_n_not_divisible_by_devices(self, rng):
        x = rng.standard_normal((47, 4)).astype(np.float64)
        init = random_labels(47, 3, rng)
        d = DistributedPopcornKernelKMeans(
            3, n_devices=4, dtype=np.float64, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)
        s = PopcornKernelKMeans(
            3, dtype=np.float64, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)
        assert np.array_equal(d.labels_, s.labels_)


class TestOnTheFlyEdges:
    def test_block_of_one_row(self, rng):
        x = rng.standard_normal((15, 3)).astype(np.float64)
        init = random_labels(15, 3, rng)
        otf = OnTheFlyKernelKMeans(
            3, block_rows=1, max_iter=4, check_convergence=False
        ).fit(x, init_labels=init)
        std = PopcornKernelKMeans(
            3, dtype=np.float64, max_iter=4, check_convergence=False
        ).fit(x, init_labels=init)
        assert np.array_equal(otf.labels_, std.labels_)


class TestSelectionEdges:
    def test_k_equals_one(self):
        v = build_selection(np.zeros(10, dtype=np.int32), 1)
        assert v.shape == (1, 10)
        assert np.allclose(v.to_dense(), 0.1)

    def test_all_points_same_cluster_of_many(self):
        labels = np.full(8, 2, dtype=np.int32)
        v = build_selection(labels, 5)
        assert v.row_nnz().tolist() == [0, 0, 8, 0, 0]


class TestSparseEdges:
    def test_empty_times_wide(self, rng):
        a = from_dense(np.zeros((4, 6)))
        b = rng.standard_normal((6, 500))
        out = spmm(a, b)
        assert out.shape == (4, 500)
        assert np.allclose(out, 0)

    def test_one_by_one(self):
        a = from_dense(np.array([[3.0]]))
        assert spmm(a, np.array([[2.0]]))[0, 0] == 6.0


class TestDataSuiteFullScale:
    def test_letter_at_full_scale(self):
        """letter is small enough to materialise at the paper's exact size."""
        x, y = generate("letter", scale=1.0, rng=0)
        assert x.shape == (10500, 26)
        assert x.dtype == np.float32

    def test_generate_respects_k(self):
        x, y = generate("letter", scale=0.02, k=7, rng=0)
        assert len(np.unique(y)) == 7


class TestKernelMatrixSymmetryThroughPipeline:
    def test_device_kernel_matrix_is_symmetric_fp32(self, device, rng):
        """FP32 GEMM + in-place transform must keep K exactly symmetric
        (the SpMM-transpose trick relies on it)."""
        from repro.kernels import device_kernel_matrix

        x = rng.standard_normal((40, 6)).astype(np.float32)
        p = device.h2d(x)
        k_buf, _, _ = device_kernel_matrix(device, p, PolynomialKernel())
        assert np.array_equal(k_buf.a, k_buf.a.T)


class TestBlobsGroundTruthUsable:
    def test_blob_labels_match_geometry(self):
        """Sanity on our own generator: nearest-centroid of the true
        centers reproduces the labels for tight blobs."""
        x, y = make_blobs(120, 4, 3, rng=0, spread=0.2, center_box=20.0)
        centers = np.stack([x[y == j].mean(axis=0) for j in range(3)])
        d = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(np.argmin(d, axis=1), y)
