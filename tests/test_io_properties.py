"""Property-based round-trip tests for dataset I/O."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import read_csv, read_libsvm, write_csv, write_libsvm

finite32 = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def dataset(draw):
    n = draw(st.integers(1, 12))
    d = draw(st.integers(1, 8))
    x = draw(arrays(np.float32, (n, d), elements=finite32))
    y = draw(arrays(np.int32, (n,), elements=st.integers(0, 9)))
    return x, y


@given(dataset())
@settings(max_examples=40, deadline=None)
def test_libsvm_round_trip(tmp_path_factory, data):
    x, y = data
    path = str(tmp_path_factory.mktemp("io") / "d.libsvm")
    write_libsvm(path, x, y)
    x2, y2 = read_libsvm(path, n_features=x.shape[1])
    assert np.allclose(x2, x, rtol=1e-5, atol=1e-4)
    assert np.array_equal(np.asarray(y2), y)


@given(dataset())
@settings(max_examples=40, deadline=None)
def test_csv_round_trip(tmp_path_factory, data):
    x, y = data
    path = str(tmp_path_factory.mktemp("io") / "d.csv")
    write_csv(path, x, y)
    x2, y2 = read_csv(path, label_column=-1)
    assert np.allclose(x2, x, rtol=1e-5, atol=1e-4)
    assert np.array_equal(y2, y)


@given(dataset())
@settings(max_examples=30, deadline=None)
def test_libsvm_sparsity_preserved(tmp_path_factory, data):
    """Zeros are omitted from the file and restored as exact zeros."""
    x, y = data
    x = x.copy()
    x[np.abs(x) < 1.0] = 0.0
    path = str(tmp_path_factory.mktemp("io") / "s.libsvm")
    write_libsvm(path, x, y)
    x2, _ = read_libsvm(path, n_features=x.shape[1])
    assert np.array_equal(x2 == 0, x == 0)
