"""Property-based monotonicity tests on the analytical models.

The figure benches assert absolute bands at the paper's exact sizes;
these tests pin the *global* structure — modeled time must respond
monotonically to every workload knob, for any knob values — so a cost
formula regression cannot hide between the benchmark grid points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model_onthefly
from repro.distributed import model_distributed_popcorn
from repro.gpu import A100_80GB
from repro.kernels import model_gram_times
from repro.modeling import model_baseline, model_cpu, model_popcorn

n_vals = st.integers(500, 80000)
d_vals = st.integers(2, 4000)
k_vals = st.integers(2, 200)


@given(n_vals, d_vals, k_vals)
@settings(max_examples=40, deadline=None)
def test_popcorn_time_monotone_in_n(n, d, k):
    k = min(k, n)
    t1 = model_popcorn(n, d, k).total_s
    t2 = model_popcorn(2 * n, d, k).total_s
    assert t2 > t1


@given(n_vals, d_vals, k_vals)
@settings(max_examples=40, deadline=None)
def test_popcorn_kernel_phase_monotone_in_d_fixed_method(n, d, k):
    """Monotone in d *per Gram method*: the auto dispatch may legitimately
    switch from GEMM to SYRK as n/d falls, halving the FLOPs."""
    k = min(k, n)
    t1 = model_popcorn(n, d, k, gram_method="gemm").phase_s("kernel_matrix")
    t2 = model_popcorn(n, 2 * d, k, gram_method="gemm").phase_s("kernel_matrix")
    assert t2 >= t1


@given(n_vals, d_vals, st.integers(2, 100))
@settings(max_examples=40, deadline=None)
def test_baseline_never_free(n, d, k):
    k = min(k, n)
    m = model_baseline(n, d, k)
    assert m.total_s > 0
    assert m.phase_s("distances") > 0


@given(n_vals, d_vals, st.integers(2, 100))
@settings(max_examples=40, deadline=None)
def test_cpu_always_slower_than_baseline_gpu(n, d, k):
    """Fig. 3's sign: the GPU baseline never loses to the CPU."""
    k = min(k, n)
    cpu = model_cpu(n, d, k).total_s
    gpu = model_baseline(n, d, k).total_s
    assert cpu > gpu


@given(st.integers(2000, 60000), st.integers(8, 2000))
@settings(max_examples=40, deadline=None)
def test_gram_times_positive_and_finite(n, d):
    t = model_gram_times(A100_80GB, n, d)
    assert 0 < t["gemm"] < 1e4
    assert 0 < t["syrk"] < 1e4


@given(st.integers(100000, 400000), st.integers(8, 1000), st.integers(2, 100),
       st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_distributed_makespan_below_single_compute(n, d, k, g):
    """More devices never *increase* per-device compute — in the regime
    where panels stay large enough to keep the GPU utilised (n/g >= 12.5k;
    for small n the utilization penalty genuinely reverses the trend,
    which is the model's small-problem behaviour, not a bug)."""
    k = min(k, n)
    m1 = model_distributed_popcorn(n, d, k, 1)
    mg = model_distributed_popcorn(n, d, k, g)
    assert mg["compute_s"] <= m1["compute_s"] * 1.01


@given(st.integers(2000, 60000), st.integers(8, 1000), st.integers(2, 100))
@settings(max_examples=30, deadline=None)
def test_onthefly_never_beats_popcorn_when_k_fits(n, d, k):
    """Recomputation is a memory trade, never a speedup."""
    k = min(k, n)
    otf = model_onthefly(n, d, k)["total_s"]
    pop = model_popcorn(n, d, k, include_transfer=False).total_s
    assert otf >= pop * 0.99
