"""Tests for the chrome-trace export and the multi-trial harness."""

import json

import numpy as np
import pytest

from repro import PopcornKernelKMeans, run_trials, TrialStats
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.gpu import to_chrome_trace, write_chrome_trace
from repro.gpu.launch import Launch
from repro.gpu.profiler import Profiler


class TestChromeTrace:
    def _profiler(self):
        p = Profiler()
        with p.phase("alpha"):
            p.record(Launch("op1", 100.0, 50.0, 1e-3))
        with p.phase("beta"):
            p.record(Launch("op2", 200.0, 25.0, 2e-3))
        return p

    def test_event_structure(self):
        events = to_chrome_trace(self._profiler())
        slices = [e for e in events if e.get("ph") == "X"]
        assert len(slices) == 2
        assert slices[0]["name"] == "op1"
        assert slices[0]["dur"] == pytest.approx(1000.0)  # us
        assert slices[1]["ts"] == pytest.approx(1000.0)  # serial timeline

    def test_phases_become_lanes(self):
        events = to_chrome_trace(self._profiler())
        slices = [e for e in events if e.get("ph") == "X"]
        assert slices[0]["tid"] != slices[1]["tid"]
        names = [e for e in events if e.get("name") == "thread_name"]
        assert {n["args"]["name"] for n in names} == {"phase: alpha", "phase: beta"}

    def test_args_carry_metrics(self):
        events = to_chrome_trace(self._profiler())
        s = [e for e in events if e.get("ph") == "X"][0]
        assert s["args"]["flops"] == 100.0
        assert s["args"]["arithmetic_intensity"] == pytest.approx(2.0)

    def test_write_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(self._profiler(), path)
        data = json.load(open(path))
        assert isinstance(data, list)

    def test_real_fit_trace(self, tmp_path):
        x, _ = make_blobs(60, 3, 2, rng=0)
        m = PopcornKernelKMeans(2, seed=0, max_iter=3, check_convergence=False).fit(x)
        events = to_chrome_trace(m.device_.profiler)
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "cusparse.spmm" in names
        # total trace duration equals the modeled clock
        total_us = sum(e["dur"] for e in events if e.get("ph") == "X")
        assert total_us == pytest.approx(m.device_.elapsed_s() * 1e6, rel=1e-9)


class TestTrialStats:
    def test_of(self):
        s = TrialStats.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.std == pytest.approx(np.std([1, 2, 3]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            TrialStats.of([])


class TestRunTrials:
    def _factory(self, x):
        return lambda seed: PopcornKernelKMeans(
            3, seed=seed, max_iter=5, check_convergence=False
        )

    def test_aggregates(self):
        x, _ = make_blobs(80, 4, 3, rng=1)
        res = run_trials(self._factory(x), lambda est: est.fit(x), n_trials=4)
        assert res.n_trials == 4
        assert len(res.objective.values) == 4
        assert res.n_iter.mean == 5.0
        assert res.total_time.mean > 0
        assert res.phase("distances").mean > 0
        assert res.phase("nonexistent").mean == 0.0

    def test_seeds_vary_objective(self):
        x, _ = make_blobs(80, 4, 3, rng=1)
        res = run_trials(self._factory(x), lambda est: est.fit(x), n_trials=4)
        # different random inits -> typically different local optima;
        # at minimum the stats machinery must not collapse trials
        assert len(set(res.objective.values)) >= 1

    def test_keep_labels(self):
        x, _ = make_blobs(50, 3, 2, rng=2)
        res = run_trials(
            self._factory(x), lambda est: est.fit(x), n_trials=2, keep_labels=True
        )
        assert len(res.labels) == 2
        assert res.labels[0].shape == (50,)

    def test_deterministic_base_seed(self):
        x, _ = make_blobs(60, 3, 2, rng=3)
        r1 = run_trials(self._factory(x), lambda e: e.fit(x), n_trials=2, base_seed=7)
        r2 = run_trials(self._factory(x), lambda e: e.fit(x), n_trials=2, base_seed=7)
        assert r1.objective.values == r2.objective.values

    def test_invalid_trials(self):
        with pytest.raises(ConfigError):
            run_trials(lambda s: None, lambda e: e, n_trials=0)
