"""Property tests for the 1-D row partition the sharded backend rides on."""

import pytest
from hypothesis import given, strategies as st

from repro.distributed import block_of, row_blocks
from repro.errors import ConfigError

ng = st.integers(min_value=1, max_value=600).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(min_value=1, max_value=n))
)


class TestRowBlocksProperties:
    @given(ng)
    def test_blocks_cover_without_overlap(self, ng_pair):
        """The blocks tile [0, n) exactly: contiguous, disjoint, complete."""
        n, g = ng_pair
        blocks = row_blocks(n, g)
        assert len(blocks) == g
        assert blocks[0][0] == 0
        assert blocks[-1][1] == n
        for (lo_a, hi_a), (lo_b, hi_b) in zip(blocks, blocks[1:]):
            assert hi_a == lo_b  # contiguous => no overlap, no gap
            assert lo_a < hi_a

    @given(ng)
    def test_balanced_within_one_row(self, ng_pair):
        n, g = ng_pair
        sizes = [hi - lo for lo, hi in row_blocks(n, g)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n

    @given(ng)
    def test_wide_blocks_first(self, ng_pair):
        """The n % g wide blocks lead — the layout block_of assumes."""
        n, g = ng_pair
        sizes = [hi - lo for lo, hi in row_blocks(n, g)]
        assert sizes == sorted(sizes, reverse=True)


class TestBlockOfProperties:
    @given(ng.flatmap(lambda p: st.tuples(st.just(p), st.integers(0, p[0] - 1))))
    def test_matches_scan(self, args):
        """The O(1) arithmetic owner equals a scan of the blocks."""
        (n, g), row = args
        blocks = row_blocks(n, g)
        scan = next(p for p, (lo, hi) in enumerate(blocks) if lo <= row < hi)
        assert block_of(n, g, row) == scan

    def test_large_n_is_cheap(self):
        """No block list is materialised: huge n resolves instantly."""
        n = 10**12
        assert block_of(n, 7, 0) == 0
        assert block_of(n, 7, n - 1) == 6

    def test_validation(self):
        with pytest.raises(ConfigError):
            block_of(10, 3, 10)
        with pytest.raises(ConfigError):
            block_of(10, 3, -1)
        with pytest.raises(ConfigError):
            block_of(3, 5, 0)  # more devices than rows
        with pytest.raises(ConfigError):
            block_of(0, 1, 0)
