"""Sharded serving: predict_batch(devices=...) and the PredictionService."""

import numpy as np
import pytest

from repro import PopcornKernelKMeans
from repro.baselines import LloydKMeans
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.gpu.profiler import Profiler
from repro.serve import PredictionService


@pytest.fixture
def fitted():
    x, _ = make_blobs(70, 5, 3, rng=2)
    q, _ = make_blobs(41, 5, 3, rng=9)
    est = PopcornKernelKMeans(3, dtype=np.float64, seed=0).fit(np.asarray(x, np.float64))
    return est, np.asarray(q, np.float64)


class TestPredictBatchSharding:
    def test_bit_identical_for_any_device_count(self, fitted):
        est, q = fitted
        ref = est.predict_batch([q, q[:7]])
        for g in (1, 2, 4, 8, 64):
            assert np.array_equal(ref, est.predict_batch([q, q[:7]], devices=g)), g

    def test_centers_estimators_shard_too(self):
        x, _ = make_blobs(50, 4, 3, rng=1)
        est = LloydKMeans(3, seed=0).fit(x)
        ref = est.predict_batch([x])
        assert np.array_equal(ref, est.predict_batch([x], devices=4))

    def test_profiler_records_shards_and_allgather(self, fitted):
        est, q = fitted
        prof = Profiler()
        est.predict_batch([q], devices=4, profiler=prof)
        assert prof.count_of("serve.shard_predict") == 4
        assert prof.count_of("comm.allgather") == 1
        rows = [la.meta["rows"] for la in prof.launches_of("serve.shard_predict")]
        assert sum(rows) == q.shape[0]

    def test_empty_batches(self, fitted):
        est, _ = fitted
        assert est.predict_batch([], devices=2).shape == (0,)

    def test_devices_validated(self, fitted):
        est, q = fitted
        with pytest.raises(ConfigError, match="devices"):
            est.predict_batch([q], devices=0)


class TestServiceSharding:
    def test_service_devices_bit_identical(self, fitted):
        est, q = fitted
        with PredictionService(est, devices=3, batch_size=8, cache_size=0) as svc:
            sharded = svc.predict_many(q)
        with PredictionService(est, batch_size=8, cache_size=0) as svc:
            plain = svc.predict_many(q)
        assert np.array_equal(sharded, plain)

    def test_service_profiler_sees_shard_launches(self, fitted):
        est, q = fitted
        with PredictionService(
            est, devices=2, batch_size=q.shape[0], max_delay_ms=20, cache_size=0
        ) as svc:
            svc.predict_many(q)
        assert svc.profiler_.count_of("serve.shard_predict") >= 2

    def test_service_validates_devices(self, fitted):
        est, _ = fitted
        with pytest.raises(ConfigError, match="devices"):
            PredictionService(est, devices=0)
