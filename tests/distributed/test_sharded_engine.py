"""The sharded multi-device backend: bit-exactness, registry, profile.

The acceptance contract of the sharded engine: ``backend="sharded:<g>"``
produces bit-identical labels to ``backend="host"`` for every estimator
in the family, for any device count — sharding moves modeled work across
simulated devices, never numerics.
"""

import numpy as np
import pytest

from repro import (
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    NystromKernelKMeans,
    PopcornKernelKMeans,
    SpectralKernelKMeans,
    WeightedPopcornKernelKMeans,
)
from repro.baselines import ElkanKMeans, LloydKMeans, PRMLTKernelKMeans, random_labels
from repro.core import OnTheFlyKernelKMeans
from repro.data import make_blobs, make_moons
from repro.engine import ShardedBackend, available_backends, get_backend
from repro.errors import AllocationError, ConfigError
from repro.kernels import PolynomialKernel, kernel_matrix

GS = (1, 2, 4, 8)


def _points(n=48, d=5, seed=3):
    x, _ = make_blobs(n, d, 3, rng=seed)
    return np.asarray(x, dtype=np.float64)


# ----------------------------------------------------------------------
# the ten-estimator bit-exactness property
# ----------------------------------------------------------------------

def _fit_points(cls, backend, x, **kw):
    return cls(3, backend=backend, seed=0, **kw).fit(x)


def _fit_points_f64(cls, backend, x, **kw):
    return cls(3, backend=backend, seed=0, dtype=np.float64, max_iter=8, **kw).fit(x)


#: estimator name -> fit callable (backend, x) -> fitted estimator;
#: every entry must produce identical labels on host and sharded:<g>
FAMILY = {
    "popcorn": lambda backend, x: _fit_points_f64(PopcornKernelKMeans, backend, x),
    "baseline_cuda": lambda backend, x: _fit_points_f64(
        BaselineCUDAKernelKMeans, backend, x
    ),
    "weighted": lambda backend, x: WeightedPopcornKernelKMeans(
        3, backend=backend, seed=0
    ).fit(
        kernel_matrix=kernel_matrix(x, PolynomialKernel()),
        sample_weight=np.linspace(0.5, 2.0, x.shape[0]),
    ),
    "distributed": lambda backend, x: DistributedPopcornKernelKMeans(
        3, backend=backend, n_devices=3, dtype=np.float64, max_iter=8, seed=0
    ).fit(x),
    "spectral": lambda backend, x: SpectralKernelKMeans(2, backend=backend, seed=0).fit(
        make_moons(60, rng=5)[0]
    ),
    "nystrom": lambda backend, x: NystromKernelKMeans(
        3, n_landmarks=20, backend=backend, seed=0
    ).fit(x),
    "onthefly": lambda backend, x: OnTheFlyKernelKMeans(
        3, block_rows=16, backend=backend, seed=0, max_iter=8
    ).fit(x),
    "prmlt": lambda backend, x: PRMLTKernelKMeans(
        3, backend=backend, seed=0, max_iter=8
    ).fit(x),
    "lloyd": lambda backend, x: LloydKMeans(3, backend=backend, seed=0).fit(x),
    "elkan": lambda backend, x: ElkanKMeans(3, backend=backend, seed=0).fit(x),
}


class TestFamilyBitExactness:
    @pytest.mark.parametrize("name", sorted(FAMILY))
    def test_sharded_matches_host_for_all_g(self, name):
        """backend='sharded:<g>' == backend='host', bit for bit, g in GS."""
        x = _points()
        fit = FAMILY[name]
        host = fit("host", x)
        for g in GS:
            sharded = fit(f"sharded:{g}", x)
            assert np.array_equal(host.labels_, sharded.labels_), (name, g)

    @pytest.mark.parametrize("name", sorted(FAMILY))
    def test_shard_count_invariance(self, name):
        """Labels are invariant in the shard count itself."""
        x = _points()
        fit = FAMILY[name]
        results = [fit(f"sharded:{g}", x).labels_ for g in GS]
        for other in results[1:]:
            assert np.array_equal(results[0], other), name

    def test_objective_history_matches_host(self):
        x = _points()
        host = FAMILY["popcorn"]("host", x)
        sharded = FAMILY["popcorn"]("sharded:4", x)
        assert host.objective_history_ == sharded.objective_history_


class TestEngineIntegration:
    def test_tiled_sharded_still_bit_exact(self):
        """tile_rows composes with sharding (both are row decompositions)."""
        x = _points(60)
        init = random_labels(60, 4, np.random.default_rng(0))
        host = PopcornKernelKMeans(4, backend="host", dtype=np.float64, max_iter=6).fit(
            x, init_labels=init
        )
        sharded = PopcornKernelKMeans(
            4, backend="sharded:3", tile_rows=7, dtype=np.float64, max_iter=6
        ).fit(x, init_labels=init)
        assert np.array_equal(host.labels_, sharded.labels_)

    def test_precomputed_kernel_matrix_path(self):
        km = kernel_matrix(_points(40), PolynomialKernel())
        k = 3
        host = PopcornKernelKMeans(k, backend="host", dtype=np.float64, seed=0).fit(
            kernel_matrix=km
        )
        sharded = PopcornKernelKMeans(k, backend="sharded:4", dtype=np.float64, seed=0).fit(
            kernel_matrix=km
        )
        assert np.array_equal(host.labels_, sharded.labels_)

    def test_syrk_rejected(self):
        with pytest.raises(ConfigError, match="syrk"):
            PopcornKernelKMeans(3, backend="sharded:2", gram_method="syrk").fit(_points())

    def test_more_devices_than_rows_rejected(self):
        with pytest.raises(ConfigError, match="devices"):
            PopcornKernelKMeans(2, backend="sharded:64", dtype=np.float64).fit(
                _points(10, 3)
            )

    def test_per_device_capacity_check(self):
        """A K block too large for one device fails fast, pointing at g."""
        x = np.zeros((200000, 2), dtype=np.float32)
        with pytest.raises(AllocationError, match="sharded:<g>"):
            PopcornKernelKMeans(10, backend="sharded:1").fit(x)


class TestShardProfile:
    def test_fitted_attributes(self):
        est = PopcornKernelKMeans(
            3, backend="sharded:4", dtype=np.float64, max_iter=5, check_convergence=False
        ).fit(_points())
        assert est.backend_ == "sharded:4"
        assert est.n_devices_ == 4
        assert len(est.device_profilers_) == 4
        assert est.makespan_s_ > 0
        assert 0 < est.parallel_efficiency_ <= 1.0
        # one centroid-norm allreduce per iteration, one label allgather
        # per iteration plus the initial point replication
        assert est.comm_profiler_.count_of("comm.allreduce") == est.n_iter_
        assert est.comm_profiler_.count_of("comm.allgather") == est.n_iter_ + 1
        # timings_ aggregates device-seconds plus the comm phase
        assert est.timings_["distances"] > 0
        assert est.timings_["comm"] == pytest.approx(est.comm_profiler_.total_time())

    def test_makespan_is_max_device_plus_comm(self):
        est = PopcornKernelKMeans(
            3, backend="sharded:3", dtype=np.float64, max_iter=4, check_convergence=False
        ).fit(_points())
        expected = max(p.total_time() for p in est.device_profilers_)
        expected += est.comm_profiler_.total_time()
        assert est.makespan_s_ == pytest.approx(expected)

    def test_balanced_blocks_get_balanced_work(self):
        est = PopcornKernelKMeans(
            3, backend="sharded:4", dtype=np.float64, max_iter=4, check_convergence=False
        ).fit(_points(80))
        totals = [p.total_time() for p in est.device_profilers_]
        assert max(totals) <= min(totals) * 1.2  # even split, even clocks

    def test_standalone_estimators_expose_profile(self):
        x = _points()
        for name in ("lloyd", "elkan", "onthefly", "prmlt", "nystrom"):
            est = FAMILY[name]("sharded:3", x)
            assert est.n_devices_ == 3, name
            assert len(est.device_profilers_) == 3, name
            assert est.makespan_s_ > 0, name
            assert 0 < est.parallel_efficiency_ <= 1.0, name
            assert est.backend_ == "sharded:3", name


class TestBackendRegistry:
    def test_sharded_registered(self):
        assert "sharded" in available_backends()
        be = get_backend("sharded")
        assert isinstance(be, ShardedBackend)

    def test_parametric_lookup_caches(self):
        be1 = get_backend("sharded:6")
        be2 = get_backend("sharded:6")
        assert be1 is be2
        assert be1.n_devices == 6
        assert be1.name == "sharded:6"

    def test_bad_parameter(self):
        with pytest.raises(ConfigError, match="device count"):
            get_backend("sharded:banana")
        with pytest.raises(ConfigError, match=">= 1"):
            get_backend("sharded:0")

    def test_unknown_parametric_base(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_backend("host:4")

    def test_parametric_lookups_do_not_pollute_registry(self):
        """Configured variants are cached aside, not registered: a sweep
        over device counts leaves available_backends() untouched."""
        before = available_backends()
        for g in (11, 13, 17):
            get_backend(f"sharded:{g}")
        assert available_backends() == before

    def test_device_backend_still_rejected_where_restricted(self):
        with pytest.raises(ConfigError, match="backend"):
            DistributedPopcornKernelKMeans(2, backend="device")
        with pytest.raises(ConfigError, match="backend"):
            NystromKernelKMeans(2, backend="device")

    def test_backend_instance_accepted(self):
        """A configured Backend instance bypasses the name registry."""
        x = _points()
        from repro.distributed import INFINIBAND

        be = ShardedBackend(3, comm=INFINIBAND)
        est = PopcornKernelKMeans(
            3, backend=be, dtype=np.float64, max_iter=5, seed=0
        ).fit(x)
        host = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, max_iter=5, seed=0
        ).fit(x)
        assert np.array_equal(est.labels_, host.labels_)
        nvlink = PopcornKernelKMeans(
            3, backend="sharded:3", dtype=np.float64, max_iter=5, seed=0
        ).fit(x)
        # same collectives, different wire: the modeled comm clock moved
        # (tiny payloads are latency-bound, where IB's 1.5us beats
        # NVLink's 3us per message)
        assert est.comm_profiler_.count_of("comm.allreduce") == nvlink.comm_profiler_.count_of(
            "comm.allreduce"
        )
        assert est.comm_profiler_.total_time() != nvlink.comm_profiler_.total_time()


class TestDistributedWrapper:
    def test_wrapper_uses_configured_devices(self, rng):
        x = rng.standard_normal((40, 4)).astype(np.float32)
        m = DistributedPopcornKernelKMeans(3, n_devices=2, max_iter=4, seed=0).fit(x)
        assert m.backend_ == "sharded:2"
        assert len(m.device_profilers_) == 2

    def test_wrapper_host_backend_runs_single_device(self, rng):
        x = rng.standard_normal((30, 4)).astype(np.float64)
        m = DistributedPopcornKernelKMeans(
            3, n_devices=4, backend="host", max_iter=4, seed=0
        ).fit(x)
        assert m.backend_ == "host"

    def test_wrapper_custom_interconnect(self, rng):
        from repro.distributed import INFINIBAND

        x = rng.standard_normal((40, 4)).astype(np.float64)
        ib = DistributedPopcornKernelKMeans(
            3, n_devices=4, comm=INFINIBAND, max_iter=4, seed=0
        ).fit(x)
        nv = DistributedPopcornKernelKMeans(3, n_devices=4, max_iter=4, seed=0).fit(x)
        assert np.array_equal(ib.labels_, nv.labels_)
        # the wire is wired through: the modeled comm clock differs
        assert ib.comm_profiler_.total_time() != nv.comm_profiler_.total_time()

    def test_wrapper_explicit_sharded_g_keeps_spec_and_comm(self, rng):
        """backend='sharded:<g>' overrides the device count but must not
        silently swap the configured interconnect for the registry default."""
        from repro.distributed import INFINIBAND

        x = rng.standard_normal((40, 4)).astype(np.float64)
        ib = DistributedPopcornKernelKMeans(
            3, n_devices=2, comm=INFINIBAND, backend="sharded:8", max_iter=4, seed=0
        ).fit(x)
        nv = DistributedPopcornKernelKMeans(
            3, n_devices=2, backend="sharded:8", max_iter=4, seed=0
        ).fit(x)
        assert ib.n_devices_ == nv.n_devices_ == 8
        assert ib.comm_profiler_.total_time() != nv.comm_profiler_.total_time()


class TestFailFast:
    def test_standalone_estimators_reject_g_gt_n_before_fitting(self):
        """g > n fails before any fit work, leaving the estimator unfitted."""
        x = _points(10, 3)
        for name in ("lloyd", "elkan", "onthefly", "prmlt", "nystrom"):
            with pytest.raises(ConfigError, match="more devices"):
                FAMILY[name]("sharded:64", x)
            # nothing half-fitted survives the failure
            fresh = {
                "lloyd": LloydKMeans(3, backend="sharded:64"),
                "elkan": ElkanKMeans(3, backend="sharded:64"),
            }.get(name)
            if fresh is not None:
                with pytest.raises(ConfigError):
                    fresh.fit(x)
                assert not hasattr(fresh, "labels_"), name

    def test_nystrom_accepts_backend_instance(self):
        x = _points()
        est = NystromKernelKMeans(
            3, n_landmarks=20, backend=ShardedBackend(2), seed=0
        ).fit(x)
        host = NystromKernelKMeans(3, n_landmarks=20, backend="host", seed=0).fit(x)
        assert np.array_equal(est.labels_, host.labels_)
        assert est.n_devices_ == 2
