"""Cost-model properties of the ring collectives (latency-bandwidth model)."""

import pytest
from hypothesis import given, strategies as st

from repro.distributed import INFINIBAND, NVLINK, allgather_cost, allreduce_cost
from repro.errors import ConfigError

counts = st.integers(min_value=1, max_value=64)
sizes = st.floats(min_value=1.0, max_value=1e12, allow_nan=False, allow_infinity=False)


class TestSingleRank:
    @given(sizes)
    def test_g1_is_free(self, nbytes):
        """One rank never communicates, whatever the payload."""
        assert allgather_cost(NVLINK, 1, nbytes).time_s == 0.0
        assert allreduce_cost(NVLINK, 1, nbytes).time_s == 0.0
        assert allgather_cost(INFINIBAND, 1, nbytes).time_s == 0.0
        assert allreduce_cost(INFINIBAND, 1, nbytes).time_s == 0.0


class TestOrderings:
    @given(st.integers(min_value=2, max_value=64), sizes)
    def test_allreduce_dominates_allgather(self, g, nbytes):
        """At equal bytes, a ring allreduce costs >= a ring allgather
        (two phases — reduce-scatter + allgather — against one)."""
        comm = NVLINK
        assert allreduce_cost(comm, g, nbytes).time_s >= allgather_cost(comm, g, nbytes).time_s

    @given(counts, sizes, sizes)
    def test_monotone_in_bytes(self, g, b1, b2):
        lo, hi = sorted((b1, b2))
        assert allgather_cost(NVLINK, g, lo).time_s <= allgather_cost(NVLINK, g, hi).time_s
        assert allreduce_cost(NVLINK, g, lo).time_s <= allreduce_cost(NVLINK, g, hi).time_s

    @given(counts, counts, sizes)
    def test_monotone_in_device_count(self, g1, g2, nbytes):
        """More ranks never make a collective cheaper (latency terms grow
        with g, and the (g-1)/g transfer fraction approaches 1)."""
        lo, hi = sorted((g1, g2))
        gather_lo = allgather_cost(NVLINK, lo, nbytes).time_s
        gather_hi = allgather_cost(NVLINK, hi, nbytes).time_s
        assert gather_lo <= gather_hi
        reduce_lo = allreduce_cost(NVLINK, lo, nbytes).time_s
        reduce_hi = allreduce_cost(NVLINK, hi, nbytes).time_s
        assert reduce_lo <= reduce_hi

    @given(
        st.integers(min_value=2, max_value=64),
        st.floats(min_value=1e7, max_value=1e12, allow_nan=False, allow_infinity=False),
    )
    def test_slower_link_costs_more_at_bandwidth_scale(self, g, nbytes):
        """Past ~10 MB the 12x bandwidth gap dominates InfiniBand's lower
        per-message latency, so the IB collective is always dearer."""
        assert (
            allgather_cost(INFINIBAND, g, nbytes).time_s
            >= allgather_cost(NVLINK, g, nbytes).time_s
        )

    def test_latency_bound_regime_favours_low_latency_link(self):
        """Tiny payloads invert the ordering: IB's 1.5us beats NVLink's
        3us per message when almost nothing moves."""
        assert (
            allgather_cost(INFINIBAND, 4, 16.0).time_s
            < allgather_cost(NVLINK, 4, 16.0).time_s
        )


class TestLaunchRecords:
    def test_metadata_and_validation(self):
        la = allgather_cost(NVLINK, 4, 1024.0)
        assert la.name == "comm.allgather"
        assert la.bytes == 1024.0
        assert la.meta["g"] == 4
        with pytest.raises(ConfigError):
            allreduce_cost(NVLINK, 0, 10.0)
