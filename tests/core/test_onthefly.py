"""Tests for the on-the-fly (blocked) Kernel K-means variant."""

import numpy as np
import pytest

from repro.baselines import random_labels
from repro.core import OnTheFlyKernelKMeans, PopcornKernelKMeans, model_onthefly
from repro.errors import ConfigError, ShapeError
from repro.kernels import GaussianKernel, LaplacianKernel, LinearKernel, PolynomialKernel


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "kern",
        [LinearKernel(), PolynomialKernel(), GaussianKernel(gamma=0.4)],
        ids=["linear", "poly", "gauss"],
    )
    @pytest.mark.parametrize("block_rows", [1, 7, 40, 1000])
    def test_matches_standard_popcorn(self, rng, kern, block_rows):
        """Any panel height reproduces the standard trajectory exactly."""
        x = rng.standard_normal((60, 4)).astype(np.float64)
        init = random_labels(60, 3, rng)
        otf = OnTheFlyKernelKMeans(
            3, kernel=kern, block_rows=block_rows, max_iter=8, check_convergence=False
        ).fit(x, init_labels=init)
        std = PopcornKernelKMeans(
            3, kernel=kern, dtype=np.float64, max_iter=8, check_convergence=False
        ).fit(x, init_labels=init)
        assert np.array_equal(otf.labels_, std.labels_)
        assert np.allclose(otf.objective_history_, std.objective_history_, rtol=1e-8)

    def test_convergence_detection(self, blobs):
        x, _, k = blobs
        m = OnTheFlyKernelKMeans(k, block_rows=32, seed=0, max_iter=100).fit(x)
        assert m.converged_
        assert m.n_iter_ < 100


class TestMemoryFootprint:
    def test_panel_bytes_scale_with_block(self, rng):
        x = rng.standard_normal((100, 3)).astype(np.float32)
        m = OnTheFlyKernelKMeans(2, block_rows=10, seed=0, max_iter=2).fit(x)
        assert m.peak_panel_bytes_ == 4 * 10 * 100

    def test_panel_clamped_to_n(self, rng):
        x = rng.standard_normal((50, 3)).astype(np.float32)
        m = OnTheFlyKernelKMeans(2, block_rows=10**6, seed=0, max_iter=2).fit(x)
        assert m.peak_panel_bytes_ == 4 * 50 * 50


class TestCostProfile:
    def test_kernel_matrix_recomputed_every_iteration(self, rng):
        """The trade-off: kernel-matrix launches scale with iterations."""
        x = rng.standard_normal((80, 5)).astype(np.float32)
        m = OnTheFlyKernelKMeans(
            3, block_rows=20, seed=0, max_iter=5, check_convergence=False
        ).fit(x)
        panels = 4  # 80 / 20
        assert m.profiler_.count_of("cublas.gemm_panel") == 5 * panels

    def test_model_totals_positive_and_phased(self):
        m = model_onthefly(50000, 780, 100)
        assert m["total_s"] > 0
        assert m["kernel_matrix_s"] > m["distances_s"]  # recompute dominates

    def test_model_memory_unlock(self):
        """n = 150k: full K exceeds 80 GB, panels do not."""
        m = model_onthefly(150000, 780, 100)
        assert m["popcorn_peak_bytes"] > 80e9
        assert m["peak_bytes"] < 80e9

    def test_model_slower_than_popcorn_when_k_fits(self):
        """Recompute costs O(n^2 d) per iteration: strictly worse when the
        kernel matrix fits — the model must show that honestly."""
        from repro.modeling import model_popcorn

        n, d, k = 50000, 780, 100
        otf = model_onthefly(n, d, k)["total_s"]
        pop = model_popcorn(n, d, k, include_transfer=False).total_s
        assert otf > pop

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            model_onthefly(0, 10, 2)


class TestValidation:
    def test_non_gram_kernel_rejected(self):
        with pytest.raises(ShapeError):
            OnTheFlyKernelKMeans(2, kernel=LaplacianKernel())

    def test_bad_block_rows(self):
        with pytest.raises(ConfigError):
            OnTheFlyKernelKMeans(2, block_rows=0)

    def test_k_exceeds_n(self, rng):
        x = rng.standard_normal((5, 2)).astype(np.float32)
        with pytest.raises(ConfigError):
            OnTheFlyKernelKMeans(9).fit(x)
