"""Tests for weighted Kernel K-means (the Dhillon et al. generalisation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_labels
from repro.core import (
    WeightedPopcornKernelKMeans,
    popcorn_distances_host,
    weighted_distances_host,
    weighted_selection_matrix,
)
from repro.errors import ConfigError, ShapeError
from repro.kernels import PolynomialKernel, kernel_matrix


class TestWeightedSelection:
    def test_unit_weights_reduce_to_standard(self, rng):
        from repro.core import build_selection

        labels = random_labels(30, 4, rng)
        vw = weighted_selection_matrix(labels, 4, np.ones(30))
        v = build_selection(labels, 4, dtype=np.float64)
        assert np.allclose(vw.to_dense(), v.to_dense())

    def test_values_are_weight_fractions(self):
        labels = np.array([0, 0, 1])
        w = np.array([1.0, 3.0, 2.0])
        vw = weighted_selection_matrix(labels, 2, w)
        dense = vw.to_dense()
        assert dense[0, 0] == pytest.approx(1 / 4)
        assert dense[0, 1] == pytest.approx(3 / 4)
        assert dense[1, 2] == pytest.approx(1.0)

    def test_one_nonzero_per_column_survives_weighting(self, rng):
        labels = random_labels(25, 3, rng)
        w = rng.uniform(0.1, 2.0, 25)
        vw = weighted_selection_matrix(labels, 3, w)
        assert vw.nnz == 25
        assert np.all(np.count_nonzero(vw.to_dense(), axis=0) == 1)

    def test_rows_sum_to_one(self, rng):
        labels = random_labels(40, 5, rng)
        w = rng.uniform(0.1, 5.0, 40)
        vw = weighted_selection_matrix(labels, 5, w)
        sums = vw.to_dense().sum(axis=1)
        counts = np.bincount(labels, minlength=5)
        assert np.allclose(sums, (counts > 0).astype(float), atol=1e-10)

    def test_zero_weight_cluster(self):
        labels = np.array([0, 1])
        w = np.array([0.0, 1.0])
        vw = weighted_selection_matrix(labels, 2, w)
        assert np.allclose(vw.to_dense()[0], 0)  # total weight zero -> zero row

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            weighted_selection_matrix(np.array([0, 1]), 2, np.array([1.0, -1.0]))

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            weighted_selection_matrix(np.array([0, 1]), 2, np.ones(3))


class TestWeightedDistances:
    def test_unit_weights_match_unweighted(self, rng):
        x = rng.standard_normal((35, 4))
        km = kernel_matrix(x, PolynomialKernel())
        labels = random_labels(35, 3, rng)
        dw = weighted_distances_host(km, labels, 3, np.ones(35))
        du, _ = popcorn_distances_host(km, labels, 3)
        assert np.allclose(dw, du, atol=1e-8)

    def test_matches_brute_force_weighted_centroids(self, rng):
        """D_ij == ||phi(p_i) - c_j||^2 with weighted centroids (linear kernel)."""
        n, k = 25, 3
        x = rng.standard_normal((n, 4))
        km = x @ x.T
        labels = random_labels(n, k, rng)
        w = rng.uniform(0.2, 3.0, n)
        s = np.bincount(labels, weights=w, minlength=k)
        centroids = np.zeros((k, 4))
        np.add.at(centroids, labels, w[:, None] * x)
        centroids /= np.maximum(s, 1e-30)[:, None]
        brute = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        got = weighted_distances_host(km, labels, k, w)
        assert np.allclose(got, brute, atol=1e-8)

    def test_duplicating_a_point_equals_doubling_its_weight(self, rng):
        """Weight-2 on point i == having point i twice."""
        n, k = 12, 2
        x = rng.standard_normal((n, 3))
        labels = random_labels(n, k, rng)
        # weighted version
        w = np.ones(n)
        w[0] = 2.0
        km = x @ x.T
        dw = weighted_distances_host(km, labels, k, w)
        # duplicated version
        x2 = np.concatenate([x, x[:1]])
        labels2 = np.concatenate([labels, labels[:1]]).astype(np.int32)
        km2 = x2 @ x2.T
        du, _ = popcorn_distances_host(km2, labels2, k)
        assert np.allclose(dw, du[:n], atol=1e-8)


class TestWeightedEstimator:
    def test_unit_weights_match_standard_engine(self, rng):
        from repro.core import PopcornKernelKMeans

        x = rng.standard_normal((40, 4))
        km = kernel_matrix(x.astype(np.float64), PolynomialKernel())
        init = random_labels(40, 3, rng)
        weighted = WeightedPopcornKernelKMeans(3, max_iter=10, check_convergence=False).fit(
            kernel_matrix=km, init_labels=init
        )
        standard = PopcornKernelKMeans(3, dtype=np.float64, max_iter=10,
                                       check_convergence=False).fit(
            kernel_matrix=km, init_labels=init
        )
        assert np.array_equal(weighted.labels_, standard.labels_)

    def test_objective_monotone(self, rng):
        x = rng.standard_normal((40, 3))
        km = kernel_matrix(x, PolynomialKernel())
        w = rng.uniform(0.5, 2.0, 40)
        m = WeightedPopcornKernelKMeans(4, seed=0, max_iter=30).fit(
            kernel_matrix=km, sample_weight=w
        )
        h = m.objective_history_
        assert all(h[i + 1] <= h[i] + 1e-7 * abs(h[i]) for i in range(len(h) - 1))

    def test_heavy_weight_pulls_centroid(self):
        """A very heavy point dominates its cluster's centroid."""
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        km = x @ x.T
        init = np.array([0, 0, 1, 1], dtype=np.int32)
        w = np.array([1.0, 1000.0, 1.0, 1.0])
        m = WeightedPopcornKernelKMeans(2, max_iter=5).fit(
            kernel_matrix=km, sample_weight=w, init_labels=init
        )
        # cluster 0's centroid sits at ~1.0; both left points stay together
        assert m.labels_[0] == m.labels_[1]

    def test_validation(self, rng):
        km = np.eye(5)
        with pytest.raises(ShapeError):
            WeightedPopcornKernelKMeans(2).fit(kernel_matrix=km, sample_weight=np.ones(3))
        with pytest.raises(ConfigError):
            WeightedPopcornKernelKMeans(9).fit(kernel_matrix=km)
        with pytest.raises(ConfigError):
            WeightedPopcornKernelKMeans(0)

    @given(st.integers(2, 4), st.integers(10, 30), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_weighted_norms_equal_spgemm(self, k, n, seed):
        """The weighted z-gather SpMV still equals diag(V_w K V_w^T)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 3))
        km = x @ x.T
        labels = rng.integers(0, k, n).astype(np.int32)
        w = rng.uniform(0.1, 3.0, n)
        vw = weighted_selection_matrix(labels, k, w)
        dense_vw = vw.to_dense()
        want = np.diagonal(dense_vw @ km @ dense_vw.T)
        # the SpMV route used inside weighted_distances_host
        from repro.sparse import spmm, spmv

        kvt = np.ascontiguousarray(spmm(vw, km).T)
        z = kvt[np.arange(n), labels]
        got = spmv(vw, np.ascontiguousarray(z))
        assert np.allclose(got, want, atol=1e-8)
