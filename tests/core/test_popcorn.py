"""Tests for the PopcornKernelKMeans estimator (Alg. 2 end to end)."""

import numpy as np
import pytest

from repro.baselines import LloydKMeans, random_labels
from repro.core import PopcornKernelKMeans
from repro.errors import ConfigError, ShapeError
from repro.eval import adjusted_rand_index, assert_monotone
from repro.gpu import A100_80GB, Device
from repro.kernels import GaussianKernel, LaplacianKernel, LinearKernel, PolynomialKernel


class TestFitBasics:
    def test_labels_shape_and_range(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0).fit(x)
        assert m.labels_.shape == (x.shape[0],)
        assert m.labels_.min() >= 0 and m.labels_.max() < k

    def test_objective_monotone_float64(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, dtype=np.float64, max_iter=25).fit(x)
        assert_monotone(m.objective_history_)

    def test_objective_monotone_float32(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, dtype=np.float32, max_iter=25).fit(x)
        assert_monotone(m.objective_history_, rel_tol=1e-4)

    def test_convergence_flag(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=100).fit(x)
        assert m.converged_
        assert m.n_iter_ < 100

    def test_fixed_iterations_mode(self, blobs):
        """Artifact -c 0: run exactly max_iter iterations."""
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, max_iter=7, check_convergence=False).fit(x)
        assert m.n_iter_ == 7
        assert not m.converged_

    def test_deterministic_given_seed(self, blobs):
        x, _, k = blobs
        a = PopcornKernelKMeans(k, seed=3).fit(x).labels_
        b = PopcornKernelKMeans(k, seed=3).fit(x).labels_
        assert np.array_equal(a, b)

    def test_init_labels_respected(self, blobs, rng):
        x, _, k = blobs
        init = random_labels(x.shape[0], k, rng)
        m = PopcornKernelKMeans(k, max_iter=1, check_convergence=False).fit(x, init_labels=init)
        # after one iteration, labels are the argmin under the init's centroids
        from repro.core import distance_matrix_reference
        from repro.kernels import kernel_matrix

        k_mat = kernel_matrix(x.astype(np.float64), PolynomialKernel())
        want = np.argmin(distance_matrix_reference(k_mat, init, k), axis=1)
        assert np.array_equal(m.labels_, want)

    def test_fit_predict(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0)
        assert np.array_equal(m.fit_predict(x), m.labels_)

    def test_timings_phases_present(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0).fit(x)
        for phase in ("kernel_matrix", "distances", "argmin_update", "transfer", "init"):
            assert phase in m.timings_ or phase == "init", m.timings_
        assert m.timings_["distances"] > 0

    def test_device_memory_released(self, blobs):
        x, _, k = blobs
        dev = Device(A100_80GB)
        PopcornKernelKMeans(k, device=dev, seed=0).fit(x)
        assert dev.allocated_bytes == 0


class TestKernelChoices:
    def test_string_kernel(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, kernel="gaussian", seed=0).fit(x)
        assert isinstance(m.kernel, GaussianKernel)

    def test_linear_kernel_matches_lloyd_one_step(self, rng):
        """With the linear kernel, one Popcorn step == one Lloyd step."""
        x, _, k = (rng.standard_normal((40, 3)).astype(np.float64), None, 4)
        init = random_labels(40, k, rng)
        pop = PopcornKernelKMeans(
            k, kernel=LinearKernel(), dtype=np.float64, max_iter=1, check_convergence=False
        ).fit(x, init_labels=init)
        # Lloyd step: centroids from init, then assign
        centroids = np.zeros((k, 3))
        counts = np.bincount(init, minlength=k)
        np.add.at(centroids, init, x)
        centroids /= np.maximum(counts, 1)[:, None]
        d = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(pop.labels_, np.argmin(d, axis=1))

    def test_precomputed_kernel_matrix(self, rng):
        n, k = 30, 3
        x = rng.standard_normal((n, 4))
        kern = PolynomialKernel()
        km = kern.pairwise(x.astype(np.float64))
        init = random_labels(n, k, rng)
        via_x = PopcornKernelKMeans(k, kernel=kern, dtype=np.float64).fit(x, init_labels=init)
        via_k = PopcornKernelKMeans(k, dtype=np.float64).fit(
            kernel_matrix=km, init_labels=init
        )
        assert np.array_equal(via_x.labels_, via_k.labels_)
        assert via_k.gram_method_ == "precomputed"

    def test_laplacian_via_precomputed(self, rng):
        n, k = 25, 3
        x = rng.standard_normal((n, 3))
        km = LaplacianKernel(gamma=0.5).pairwise(x.astype(np.float64))
        m = PopcornKernelKMeans(k, seed=0).fit(kernel_matrix=km)
        assert m.labels_.shape == (n,)

    def test_laplacian_direct_raises(self, rng):
        x = rng.standard_normal((10, 3)).astype(np.float32)
        with pytest.raises(ShapeError, match="Gram-expressible"):
            PopcornKernelKMeans(2, kernel=LaplacianKernel()).fit(x)


class TestGramDispatch:
    def test_auto_records_method(self, rng):
        x = rng.standard_normal((300, 2)).astype(np.float32)
        m = PopcornKernelKMeans(3, seed=0, max_iter=2).fit(x)
        assert m.gram_method_ == "gemm"  # ratio 150 > 100

    def test_forced_methods_agree(self, blobs, rng):
        x, _, k = blobs
        init = random_labels(x.shape[0], k, rng)
        a = PopcornKernelKMeans(k, gram_method="gemm", dtype=np.float64).fit(x, init_labels=init)
        b = PopcornKernelKMeans(k, gram_method="syrk", dtype=np.float64).fit(x, init_labels=init)
        assert np.array_equal(a.labels_, b.labels_)

    def test_threshold_override(self, blobs):
        x, _, k = blobs  # n=90, d=5, ratio 18
        m = PopcornKernelKMeans(k, gram_threshold=10.0, seed=0, max_iter=2).fit(x)
        assert m.gram_method_ == "gemm"


class TestInitStrategies:
    def test_kmeanspp_init_runs(self, circles):
        x, y, k = circles
        m = PopcornKernelKMeans(
            k, kernel=GaussianKernel(gamma=5.0), init="k-means++", seed=1, max_iter=60
        ).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.9

    def test_empty_cluster_reseed(self, rng):
        """With k close to n, 'reseed' keeps all clusters populated."""
        x = rng.standard_normal((12, 2)).astype(np.float32)
        m = PopcornKernelKMeans(
            6, empty_cluster_policy="reseed", seed=0, max_iter=10
        ).fit(x)
        counts = np.bincount(m.labels_, minlength=6)
        assert (counts > 0).all()


class TestPredict:
    def test_predict_training_points_match_labels(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, dtype=np.float64).fit(x)
        assert np.array_equal(m.predict(x), m.labels_)

    def test_predict_with_cross_kernel(self, blobs):
        x, _, k = blobs
        kern = PolynomialKernel()
        m = PopcornKernelKMeans(k, kernel=kern, seed=0, dtype=np.float64).fit(x)
        kc = kern.pairwise(x[:10].astype(np.float64), x.astype(np.float64))
        assert np.array_equal(m.predict(cross_kernel=kc), m.labels_[:10])

    def test_predict_unfitted_raises(self):
        with pytest.raises(ConfigError, match="not fitted"):
            PopcornKernelKMeans(3).predict(np.zeros((2, 2)))

    def test_predict_precomputed_needs_cross_kernel(self, rng):
        x = rng.standard_normal((15, 3))
        km = PolynomialKernel().pairwise(x.astype(np.float64))
        m = PopcornKernelKMeans(3, seed=0).fit(kernel_matrix=km)
        with pytest.raises(ShapeError, match="cross_kernel"):
            m.predict(x)


class TestValidation:
    def test_bad_n_clusters(self):
        with pytest.raises(ConfigError):
            PopcornKernelKMeans(0)

    def test_k_exceeds_n(self, rng):
        x = rng.standard_normal((5, 2)).astype(np.float32)
        with pytest.raises(ConfigError, match="exceeds"):
            PopcornKernelKMeans(10).fit(x)

    def test_bad_gram_method(self):
        with pytest.raises(ConfigError):
            PopcornKernelKMeans(2, gram_method="blas")

    def test_bad_init(self):
        with pytest.raises(ConfigError):
            PopcornKernelKMeans(2, init="magic")

    def test_bad_empty_policy(self):
        with pytest.raises(ConfigError):
            PopcornKernelKMeans(2, empty_cluster_policy="explode")

    def test_no_input_raises(self):
        with pytest.raises(ShapeError):
            PopcornKernelKMeans(2).fit()

    def test_nonsquare_kernel_matrix(self, rng):
        with pytest.raises(ShapeError):
            PopcornKernelKMeans(2).fit(kernel_matrix=rng.standard_normal((4, 5)))

    def test_bad_device_type(self, rng):
        x = rng.standard_normal((10, 2)).astype(np.float32)
        with pytest.raises(ConfigError, match="device"):
            PopcornKernelKMeans(2, device="a100").fit(x)

    def test_device_spec_accepted(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, device=A100_80GB, seed=0, max_iter=2).fit(x)
        assert m.device_.spec is A100_80GB


class TestQuality:
    def test_rbf_solves_circles(self, circles):
        """The paper's motivation: non-linearly separable clusters."""
        x, y, k = circles
        m = PopcornKernelKMeans(
            k, kernel=GaussianKernel(gamma=5.0), seed=0, max_iter=100
        ).fit(x)
        assert adjusted_rand_index(m.labels_, y) == pytest.approx(1.0)

    def test_lloyd_fails_circles(self, circles):
        x, y, _ = circles
        lab = LloydKMeans(2, seed=0).fit(x).labels_
        assert adjusted_rand_index(lab, y) < 0.3

    def test_blobs_recovered(self, blobs):
        x, y, k = blobs
        m = PopcornKernelKMeans(
            k, kernel=LinearKernel(), init="k-means++", seed=2, max_iter=50
        ).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.9
