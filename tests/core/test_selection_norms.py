"""Tests for the selection-matrix invariants and centroid-norm routes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_labels
from repro.core import (
    build_selection,
    centroid_norms_reference,
    centroid_norms_spgemm,
    centroid_norms_spmv,
    gather_z,
    selection_dense,
    verify_selection_invariants,
)
from repro.errors import ShapeError, SparseFormatError
from repro.kernels import PolynomialKernel, kernel_matrix
from repro.sparse import CSRMatrix, spmm


class TestSelectionInvariants:
    def test_valid_selection_passes(self, rng):
        labels = rng.integers(0, 4, 30).astype(np.int32)
        v = build_selection(labels, 4)
        verify_selection_invariants(v, labels)

    def test_detects_wrong_nnz(self, rng):
        labels = rng.integers(0, 3, 10).astype(np.int32)
        v = build_selection(labels, 3)
        broken = CSRMatrix(
            v.values[:-1], v.colinds[:-1],
            np.concatenate([v.rowptrs[:-1], [v.nnz - 1]]), v.shape, check=False,
        )
        with pytest.raises(SparseFormatError, match="nonzeros"):
            verify_selection_invariants(broken, labels)

    def test_detects_wrong_pattern(self, rng):
        labels = rng.integers(0, 3, 12).astype(np.int32)
        v = build_selection(labels, 3)
        other = labels.copy()
        other[0] = (other[0] + 1) % 3
        with pytest.raises(SparseFormatError):
            verify_selection_invariants(v, other)

    def test_detects_bad_values(self, rng):
        labels = rng.integers(0, 3, 12).astype(np.int32)
        v = build_selection(labels, 3)
        v.values[0] *= 2  # corrupt a reciprocal cardinality
        with pytest.raises(SparseFormatError, match="sum"):
            verify_selection_invariants(v, labels)

    def test_dense_reference_agrees(self, rng):
        labels = rng.integers(0, 5, 25).astype(np.int32)
        v = build_selection(labels, 5, dtype=np.float64)
        assert np.allclose(v.to_dense(), selection_dense(labels, 5))


class TestCentroidNorms:
    def _setup(self, rng, n=30, k=5):
        x = rng.standard_normal((n, 4))
        k_mat = kernel_matrix(x, PolynomialKernel())
        labels = random_labels(n, k, rng)
        return k_mat, labels, k

    def test_spmv_equals_reference(self, rng):
        k_mat, labels, k = self._setup(rng)
        v = build_selection(labels, k, dtype=np.float64)
        kvt = spmm(v, k_mat).T  # (n, k) = (V K)^T = K V^T
        got = centroid_norms_spmv(np.ascontiguousarray(kvt), v, labels)
        want = centroid_norms_reference(k_mat, labels, k)
        assert np.allclose(got, want, atol=1e-8)

    def test_spgemm_equals_reference(self, rng):
        k_mat, labels, k = self._setup(rng)
        v = build_selection(labels, k, dtype=np.float64)
        got = centroid_norms_spgemm(k_mat, v)
        want = centroid_norms_reference(k_mat, labels, k)
        assert np.allclose(got, want, atol=1e-8)

    def test_spmv_equals_spgemm_exactly(self, rng):
        """The paper's claim: the z-gather SpMV computes exactly
        diag(V K V^T) (Sec. 3.3, Fig. 1)."""
        k_mat, labels, k = self._setup(rng, n=40, k=7)
        v = build_selection(labels, k, dtype=np.float64)
        kvt = np.ascontiguousarray(spmm(v, k_mat).T)
        spmv_route = centroid_norms_spmv(kvt, v, labels)
        spgemm_route = centroid_norms_spgemm(k_mat, v)
        assert np.allclose(spmv_route, spgemm_route, atol=1e-10)

    def test_empty_cluster_norm_is_zero(self, rng):
        n, k = 12, 4
        labels = (rng.integers(0, 3, n)).astype(np.int32)  # cluster 3 empty
        x = rng.standard_normal((n, 3))
        k_mat = x @ x.T
        v = build_selection(labels, k, dtype=np.float64)
        kvt = np.ascontiguousarray(spmm(v, k_mat).T)
        got = centroid_norms_spmv(kvt, v, labels)
        assert got[3] == 0.0

    def test_gather_z(self, rng):
        kvt = rng.standard_normal((8, 3))
        labels = rng.integers(0, 3, 8).astype(np.int32)
        z = gather_z(kvt, labels)
        assert np.array_equal(z, kvt[np.arange(8), labels])

    def test_gather_z_bad_labels(self, rng):
        with pytest.raises(ShapeError):
            gather_z(rng.standard_normal((5, 2)), np.array([0, 1, 2, 0, 1]))

    def test_shape_validation(self, rng):
        k_mat, labels, k = self._setup(rng)
        v = build_selection(labels, k)
        with pytest.raises(ShapeError):
            centroid_norms_spmv(np.zeros((3, 3)), v, labels)
        with pytest.raises(ShapeError):
            centroid_norms_spgemm(np.zeros((3, 4)), v)

    @given(st.integers(2, 5), st.integers(8, 30), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_spmv_equals_reference(self, k, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 3))
        k_mat = x @ x.T  # linear-kernel Gram, PSD
        labels = rng.integers(0, k, n).astype(np.int32)
        v = build_selection(labels, k, dtype=np.float64)
        kvt = np.ascontiguousarray(spmm(v, k_mat).T)
        got = centroid_norms_spmv(kvt, v, labels)
        want = centroid_norms_reference(k_mat, labels, k)
        assert np.allclose(got, want, atol=1e-8)
