"""Tests for the matrix-centric distance computation (paper Eq. 10).

The crown-jewel test verifies the *entire* algebraic chain of Sec. 3
against brute force in the explicit feature space: for the degree-2
polynomial kernel the feature map is finite, so
``||phi(p_i) - c_j||^2`` can be computed literally and compared.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_labels
from repro.core import (
    distance_matrix_reference,
    popcorn_distance_step,
    popcorn_distances_host,
)
from repro.errors import ShapeError
from repro.gpu import Device, A100_80GB, custom
from repro.kernels import GaussianKernel, LinearKernel, PolynomialKernel, kernel_matrix


class TestAgainstExplicitFeatureSpace:
    def test_polynomial_kernel_trick_end_to_end(self, rng):
        """Eq. 10 == brute force in the explicit polynomial feature space."""
        n, k, d = 25, 4, 3
        x = rng.standard_normal((n, d))
        kern = PolynomialKernel(gamma=1.0, coef0=1.0, degree=2)
        labels = random_labels(n, k, rng)

        # brute force: map to feature space, form centroids, measure
        phi = kern.explicit_feature_map(x)  # (n, d_hat)
        centroids = np.zeros((k, phi.shape[1]))
        counts = np.bincount(labels, minlength=k)
        np.add.at(centroids, labels, phi)
        centroids /= np.maximum(counts, 1)[:, None]
        brute = ((phi[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)

        # matrix-centric: D = -2 K V^T + P~ + C~
        k_mat = kernel_matrix(x.astype(np.float64), kern)
        d_mat, _ = popcorn_distances_host(k_mat, labels, k)
        assert np.allclose(d_mat, brute, atol=1e-8)

    def test_linear_kernel_equals_input_space(self, rng):
        """Linear kernel: feature space == input space."""
        n, k = 20, 3
        x = rng.standard_normal((n, 4))
        labels = random_labels(n, k, rng)
        counts = np.bincount(labels, minlength=k)
        centroids = np.zeros((k, 4))
        np.add.at(centroids, labels, x)
        centroids /= np.maximum(counts, 1)[:, None]
        brute = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        k_mat = x @ x.T
        d_mat, _ = popcorn_distances_host(k_mat, labels, k)
        assert np.allclose(d_mat, brute, atol=1e-8)


class TestHostPipeline:
    @pytest.mark.parametrize(
        "kern",
        [LinearKernel(), PolynomialKernel(), GaussianKernel(gamma=0.5)],
        ids=["linear", "poly", "gauss"],
    )
    def test_matches_reference(self, rng, kern):
        n, k = 30, 5
        x = rng.standard_normal((n, 4))
        k_mat = kernel_matrix(x.astype(np.float64), kern)
        labels = random_labels(n, k, rng)
        ref = distance_matrix_reference(k_mat, labels, k)
        got, v = popcorn_distances_host(k_mat, labels, k)
        assert np.allclose(got, ref, atol=1e-7)
        assert v.shape == (k, n)

    def test_empty_cluster_distance_is_point_norm(self, rng):
        """With C~_j = 0 for an empty cluster, D_ij = K_ii."""
        n, k = 10, 3
        x = rng.standard_normal((n, 2))
        k_mat = x @ x.T
        labels = np.zeros(n, dtype=np.int32)  # clusters 1, 2 empty
        labels[5:] = 1
        got, _ = popcorn_distances_host(k_mat, labels, k)
        assert np.allclose(got[:, 2], np.diagonal(k_mat), atol=1e-6)

    def test_reference_rejects_nonsquare(self, rng):
        with pytest.raises(ShapeError):
            distance_matrix_reference(rng.standard_normal((3, 4)), np.zeros(3, dtype=np.int32), 2)


class TestDeviceStep:
    def test_matches_host_pipeline(self, rng):
        n, k = 24, 4
        x = rng.standard_normal((n, 3))
        kern = PolynomialKernel()
        k_mat = kernel_matrix(x.astype(np.float64), kern)
        labels = random_labels(n, k, rng)

        dev = Device(A100_80GB)
        k_buf = dev.h2d(k_mat)
        p_norms = custom.diag_extract(dev, k_buf)
        d_buf, v = popcorn_distance_step(dev, k_buf, p_norms, labels, k)
        host_d, _ = popcorn_distances_host(k_mat, labels, k)
        assert np.allclose(d_buf.a, host_d, atol=1e-8)

    def test_launch_sequence(self, rng):
        """The step issues exactly the Alg. 2 lines 7-10 launches."""
        n, k = 16, 2
        x = rng.standard_normal((n, 2))
        dev = Device(A100_80GB)
        k_buf = dev.h2d((x @ x.T).astype(np.float64))
        p_norms = custom.diag_extract(dev, k_buf)
        dev.profiler.reset()
        popcorn_distance_step(dev, k_buf, p_norms, random_labels(n, k, rng), k)
        names = [l.name for l in dev.profiler.launches]
        assert names == [
            "custom.v_build",
            "cusparse.spmm",
            "custom.z_gather",
            "cusparse.spmv",
            "custom.d_add",
        ]

    def test_buffers_freed_cleanly(self, rng):
        n, k = 12, 3
        dev = Device(A100_80GB)
        x = rng.standard_normal((n, 2))
        k_buf = dev.h2d((x @ x.T).astype(np.float64))
        p_norms = custom.diag_extract(dev, k_buf)
        before = dev.allocated_bytes
        d_buf, v = popcorn_distance_step(dev, k_buf, p_norms, random_labels(n, k, rng), k)
        d_buf.free()
        v.free()
        assert dev.allocated_bytes == before


class TestDistanceProperties:
    @given(st.integers(2, 6), st.integers(10, 40), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_own_centroid_not_farther_than_reference_says(self, k, n, seed):
        """D is a true squared-distance matrix: non-negative up to round-off
        and exactly matching the brute-force reference."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 3))
        k_mat = x @ x.T
        labels = rng.integers(0, k, n).astype(np.int32)
        got, _ = popcorn_distances_host(k_mat, labels, k)
        ref = distance_matrix_reference(k_mat, labels, k)
        assert np.allclose(got, ref, atol=1e-7)
        assert got.min() > -1e-7
