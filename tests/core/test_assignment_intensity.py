"""Tests for assignment/convergence logic and the Eq. 16/17 formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConvergenceTracker,
    argmin_assign,
    distances_intensity,
    kernel_matrix_intensity,
    objective_value,
)
from repro.errors import ShapeError


class TestArgminAssign:
    def test_basic(self):
        d = np.array([[3.0, 1.0], [0.5, 2.0]])
        assert np.array_equal(argmin_assign(d), [1, 0])

    def test_tie_break_low_index(self):
        d = np.array([[1.0, 1.0]])
        assert argmin_assign(d)[0] == 0

    def test_requires_2d(self):
        with pytest.raises(ShapeError):
            argmin_assign(np.ones(3))

    def test_dtype(self):
        assert argmin_assign(np.ones((2, 2))).dtype == np.int32

    @given(
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_tie_breaks_to_lowest_index(self, n, k, seed):
        # quantise to a handful of levels so row-wise ties are common;
        # the contract (which the fused chunked reduction must and does
        # reproduce) is the lowest column index among the row minima
        rng = np.random.default_rng(seed)
        d = rng.integers(0, 3, size=(n, k)).astype(np.float64)
        got = argmin_assign(d)
        assert got.dtype == np.int32
        for i in range(n):
            ties = np.flatnonzero(d[i] == d[i].min())
            assert got[i] == ties[0]


class TestObjective:
    def test_sums_assigned_entries(self):
        d = np.array([[1.0, 9.0], [9.0, 2.0]])
        assert objective_value(d, np.array([0, 1])) == pytest.approx(3.0)

    def test_argmin_assignment_minimises(self, rng):
        d = np.abs(rng.standard_normal((20, 5)))
        best = objective_value(d, argmin_assign(d))
        other = objective_value(d, rng.integers(0, 5, 20).astype(np.int32))
        assert best <= other

    def test_bad_labels(self):
        with pytest.raises(ShapeError):
            objective_value(np.ones((3, 2)), np.array([0, 2, 0]))


class TestConvergenceTracker:
    def test_stops_on_stable_assignment(self):
        t = ConvergenceTracker(tol=0.0)
        lab = np.array([0, 1, 1])
        assert not t.update(lab, 10.0)
        assert t.update(lab.copy(), 9.0)
        assert t.converged
        assert "stable" in t.reason

    def test_stops_on_small_objective_improvement(self):
        t = ConvergenceTracker(tol=1e-2)
        assert not t.update(np.array([0, 1]), 100.0)
        assert t.update(np.array([1, 0]), 99.9999)  # improvement 1e-6 < tol
        assert "tol" in t.reason

    def test_does_not_stop_on_big_improvement(self):
        t = ConvergenceTracker(tol=1e-4)
        assert not t.update(np.array([0, 1]), 100.0)
        assert not t.update(np.array([1, 0]), 50.0)

    def test_check_false_never_converges(self):
        t = ConvergenceTracker(tol=1e-2, check=False)
        lab = np.array([0, 0])
        assert not t.update(lab, 1.0)
        assert not t.update(lab, 1.0)
        assert not t.converged

    def test_objective_increase_does_not_trigger_tol_stop(self):
        t = ConvergenceTracker(tol=1e-2)
        t.update(np.array([0, 1]), 10.0)
        assert not t.update(np.array([1, 0]), 11.0)  # worse, keep going

    def test_records_history(self):
        t = ConvergenceTracker(check=False)
        for i, obj in enumerate([5.0, 4.0, 3.0]):
            t.update(np.array([i % 2, 1]), obj)
        assert t.objectives == [5.0, 4.0, 3.0]


class TestIntensityFormulas:
    def test_eq16_value(self):
        """Eq. 16 with F_K = 4n^2, B_K = 2n^2."""
        n, d = 1000, 100
        got = kernel_matrix_intensity(n, d)
        want = (4 * n**2 + 2 * n**2 * d) / (4 * (2 * n**2 + 2 * n * d + n**2))
        assert got == pytest.approx(want)

    def test_eq16_custom_kernel_costs(self):
        got = kernel_matrix_intensity(100, 10, f_k=0.0, b_k=0.0)
        want = (2 * 100**2 * 10) / (4 * (2 * 100 * 10 + 100**2))
        assert got == pytest.approx(want)

    def test_eq16_grows_with_d(self):
        assert kernel_matrix_intensity(1000, 1000) > kernel_matrix_intensity(1000, 10)

    def test_eq17_value(self):
        n, k = 1000, 10
        got = distances_intensity(n, k)
        want = (2 * n**2 + 2 * n + 3 * n * k) / (4 * (n**2 + 6 * n + 4 * k + 3 * n * k))
        assert got == pytest.approx(want)

    def test_eq17_limit_is_half(self):
        """For n >> k the distance phase AI tends to 2n^2/4n^2 = 0.5."""
        assert distances_intensity(10**7, 10) == pytest.approx(0.5, abs=0.01)

    def test_eq17_memory_bound_on_a100(self):
        """AI ~ 0.5 sits far below the A100 ridge (~10): SpMM is
        bandwidth-bound, the premise of the whole Fig. 5/6 analysis."""
        from repro.gpu import A100_80GB

        assert distances_intensity(50000, 100) < A100_80GB.ridge_ai / 10

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            kernel_matrix_intensity(0, 5)
        with pytest.raises(ShapeError):
            distances_intensity(5, 0)
