"""API conformance: every registered estimator exposes the uniform surface.

This file is the fast CI pre-gate (it runs before the full matrix): it
instantiates every registered estimator with defaults and asserts the
contract the whole system is built on — the params protocol
(``get_params`` / ``set_params`` / ``clone`` / introspectable specs),
the uniform ``fit`` / ``fit_predict`` / ``predict`` signatures, the
``NotFittedError`` guard, and registry/persistence interoperability.
No fits larger than a few dozen points run here.
"""

import inspect

import numpy as np
import pytest

from repro import (
    NotFittedError,
    available_estimators,
    clone,
    get_estimator_class,
    make_estimator,
)
from repro.data import make_blobs
from repro.engine.base import OutOfSamplePredictor
from repro.errors import ConfigError
from repro.params import ParamSpec, ParamsProtocol

ALL = sorted(available_estimators())

UNIFORM_FIT_PARAMS = ["self", "x", "kernel_matrix", "init_labels", "sample_weight"]


@pytest.mark.parametrize("name", ALL)
class TestUniformSurface:
    def test_constructs_with_defaults(self, name):
        est = make_estimator(name, n_clusters=2)
        assert est.n_clusters == 2

    def test_params_protocol(self, name):
        cls = get_estimator_class(name)
        assert issubclass(cls, ParamsProtocol)
        est = make_estimator(name, n_clusters=2)
        params = est.get_params(deep=False)
        assert params["n_clusters"] == 2
        assert set(params) == set(cls.param_specs())
        assert all(isinstance(s, ParamSpec) for s in cls.param_specs().values())
        est.set_params(**params)  # idempotent
        assert isinstance(clone(est), cls)
        assert repr(est).startswith(cls.__name__ + "(")

    def test_uniform_fit_and_fit_predict_signatures(self, name):
        cls = get_estimator_class(name)
        assert list(inspect.signature(cls.fit).parameters) == UNIFORM_FIT_PARAMS
        assert cls.fit_predict is OutOfSamplePredictor.fit_predict

    def test_predict_surface_and_not_fitted_guard(self, name):
        est = make_estimator(name, n_clusters=2)
        for method in ("fit", "fit_predict", "predict", "predict_batch",
                       "get_params", "set_params", "clone"):
            assert callable(getattr(est, method)), method
        with pytest.raises(NotFittedError):
            est.predict(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            est.predict_batch([np.zeros((2, 2))])

    def test_unknown_param_raises_config_error(self, name):
        with pytest.raises(ConfigError, match="valid parameters"):
            make_estimator(name, n_clusters=2, frobnicate=True)

    def test_shared_validation(self, name):
        with pytest.raises(ConfigError):
            make_estimator(name, n_clusters=0)


def test_default_fit_produces_fitted_attributes():
    """One tiny real fit per estimator: labels_ + the fitted guard clears."""
    x, _ = make_blobs(36, 3, 2, rng=0)
    for name in ALL:
        est = make_estimator(name, n_clusters=2, seed=0)
        est.fit(x)
        assert est.labels_.shape == (x.shape[0],), name
        assert est.labels_.dtype == np.int32, name
        # fitted: the guard no longer raises
        est.predict_batch([])
