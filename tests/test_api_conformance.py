"""API conformance: every registered estimator exposes the uniform surface.

This file is the fast CI pre-gate (it runs before the full matrix): it
instantiates every registered estimator with defaults and asserts the
contract the whole system is built on — the params protocol
(``get_params`` / ``set_params`` / ``clone`` / introspectable specs),
the uniform ``fit`` / ``fit_predict`` / ``predict`` signatures, the
``NotFittedError`` guard, and registry/persistence interoperability.
No fits larger than a few dozen points run here.
"""

import inspect

import numpy as np
import pytest

from repro import (
    NotFittedError,
    available_estimators,
    clone,
    get_estimator_class,
    make_estimator,
)
from repro.data import make_blobs
from repro.engine.base import OutOfSamplePredictor
from repro.errors import ConfigError
from repro.params import ParamSpec, ParamsProtocol

ALL = sorted(available_estimators())

UNIFORM_FIT_PARAMS = ["self", "x", "kernel_matrix", "init_labels", "sample_weight"]


@pytest.mark.parametrize("name", ALL)
class TestUniformSurface:
    def test_constructs_with_defaults(self, name):
        est = make_estimator(name, n_clusters=2)
        assert est.n_clusters == 2

    def test_params_protocol(self, name):
        cls = get_estimator_class(name)
        assert issubclass(cls, ParamsProtocol)
        est = make_estimator(name, n_clusters=2)
        params = est.get_params(deep=False)
        assert params["n_clusters"] == 2
        assert set(params) == set(cls.param_specs())
        assert all(isinstance(s, ParamSpec) for s in cls.param_specs().values())
        est.set_params(**params)  # idempotent
        assert isinstance(clone(est), cls)
        assert repr(est).startswith(cls.__name__ + "(")

    def test_uniform_fit_and_fit_predict_signatures(self, name):
        cls = get_estimator_class(name)
        assert list(inspect.signature(cls.fit).parameters) == UNIFORM_FIT_PARAMS
        assert cls.fit_predict is OutOfSamplePredictor.fit_predict

    def test_predict_surface_and_not_fitted_guard(self, name):
        est = make_estimator(name, n_clusters=2)
        for method in ("fit", "fit_predict", "predict", "predict_batch",
                       "get_params", "set_params", "clone"):
            assert callable(getattr(est, method)), method
        with pytest.raises(NotFittedError):
            est.predict(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            est.predict_batch([np.zeros((2, 2))])

    def test_unknown_param_raises_config_error(self, name):
        with pytest.raises(ConfigError, match="valid parameters"):
            make_estimator(name, n_clusters=2, frobnicate=True)

    def test_shared_validation(self, name):
        with pytest.raises(ConfigError):
            make_estimator(name, n_clusters=0)


# ----------------------------------------------------------------------
# ParamSpec <-> __init__ conformance (the runtime twin of lint rule
# RPR104 — repro-lint fails the same drift without running the tests)
# ----------------------------------------------------------------------

def _kernel_classes():
    from repro.kernels.base import Kernel

    seen = [Kernel]
    stack = list(Kernel.__subclasses__())
    while stack:
        cls = stack.pop()
        if cls in seen or not cls.__module__.startswith("repro."):
            continue
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return seen


_PARAMS_CLASSES = sorted(
    {get_estimator_class(name) for name in ALL} | set(_kernel_classes()),
    key=lambda cls: cls.__name__,
)


@pytest.mark.parametrize(
    "cls", _PARAMS_CLASSES, ids=[c.__name__ for c in _PARAMS_CLASSES]
)
def test_paramspec_matches_init_surface(cls):
    """Every __init__ kwarg is a declared ParamSpec (or declared alias),
    defaults agree on both sides, every declared parameter is
    constructible, and clone() round-trips get_params()."""
    from pathlib import Path

    from repro.analysis.contracts import check_params_class
    from repro.analysis.core import Rule

    root = Path(__file__).resolve().parents[1]
    findings = check_params_class(root, Rule(), cls)
    assert findings == [], [f.message for f in findings]


def test_conformance_covers_the_whole_registry_and_kernel_tree():
    """The parametrized surface above spans all estimators + kernels."""
    assert len(ALL) >= 10
    assert len(_kernel_classes()) >= 8


def test_default_fit_produces_fitted_attributes():
    """One tiny real fit per estimator: labels_ + the fitted guard clears."""
    x, _ = make_blobs(36, 3, 2, rng=0)
    for name in ALL:
        est = make_estimator(name, n_clusters=2, seed=0)
        est.fit(x)
        assert est.labels_.shape == (x.shape[0],), name
        assert est.labels_.dtype == np.int32, name
        # fitted: the guard no longer raises
        est.predict_batch([])


# ----------------------------------------------------------------------
# partial_fit: part of the uniform surface for every estimator
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.estimators import estimator_capabilities  # noqa: E402

UNIFORM_PARTIAL_FIT_PARAMS = ["self", "x", "kernel_matrix", "sample_weight"]


@pytest.mark.parametrize("name", ALL)
class TestPartialFitContract:
    def test_uniform_partial_fit_signature(self, name):
        cls = get_estimator_class(name)
        sig = inspect.signature(cls.partial_fit)
        assert list(sig.parameters) == UNIFORM_PARTIAL_FIT_PARAMS
        assert (
            sig.parameters["x"].kind
            is inspect.Parameter.POSITIONAL_OR_KEYWORD
        )
        for kw in ("kernel_matrix", "sample_weight"):
            assert sig.parameters[kw].kind is inspect.Parameter.KEYWORD_ONLY, kw

    def test_capability_gate_never_attribute_error(self, name):
        est = make_estimator(name, n_clusters=2, seed=0)
        x = np.random.default_rng(0).standard_normal((10, 3))
        if "supports_partial_fit" in estimator_capabilities(name):
            est.partial_fit(x)
            assert est.n_batches_seen_ == 1
            assert est.labels_.shape == (10,)
        else:
            # a uniform, explained ConfigError — never AttributeError
            with pytest.raises(ConfigError, match="supports_partial_fit"):
                est.partial_fit(x)


def _full_inertia(est, x):
    """Full-data kernel inertia of a fitted online model (test-side math:
    d(x_i, c_j) = kappa(x_i, x_i) - 2 <phi(x_i), c_j> + ||c_j||^2)."""
    xm = np.asarray(x, dtype=np.float64)
    cross = np.asarray(est.kernel.pairwise(xm, est._support_x), dtype=np.float64)
    v = est._support_v
    dense = np.zeros(v.shape)
    np.add.at(dense, (v.row_indices(), v.colinds), v.values)
    s = cross @ dense.T
    diag = np.asarray(np.diagonal(est.kernel.pairwise(xm)), dtype=np.float64)
    d = diag[:, None] - 2.0 * s + np.asarray(est._c_norms, dtype=np.float64)[None, :]
    return float(d.min(axis=1).sum())


@given(order=st.permutations(list(range(4))), seed=st.integers(0, 3))
@settings(max_examples=12, deadline=None)
def test_interleaved_batch_orders_converge_to_similar_objective(order, seed):
    """Streaming the same batches in a different order lands on the same
    objective basin: full-data inertia agrees within a loose tolerance."""
    x, _ = make_blobs(40, 4, 3, rng=seed)
    x = x.astype(np.float64)
    batches = [x[i * 10 : (i + 1) * 10] for i in range(4)]

    def train(seq):
        est = make_estimator(
            "popcorn", n_clusters=3, seed=seed, backend="host", dtype=np.float64
        )
        est.partial_fit(x)  # identical cold start for both streams
        for _ in range(2):
            for b in seq:
                est.partial_fit(batches[b])
        return est

    a = _full_inertia(train(list(range(4))), x)
    b = _full_inertia(train(list(order)), x)
    assert a == pytest.approx(b, rel=0.5)
