"""Smoke tests: every example script runs to completion.

Each example carries its own internal assertions (quality thresholds),
so a zero exit status is a meaningful end-to-end check of the public API.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "nonlinear_clustering.py",
    "image_change_detection.py",
    "performance_study.py",
    "distributed_clustering.py",
    "graph_communities.py",
    "serve_quickstart.py",
    "async_serve_quickstart.py",
    "online_refresh.py",
    "trace_quickstart.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_example_list_is_complete():
    """Every .py in examples/ is covered by the smoke test."""
    found = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert found == sorted(EXAMPLES)
