"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import random_labels
from repro.data import make_blobs, make_circles
from repro.gpu import A100_80GB, Device
from repro.kernels import PolynomialKernel, kernel_matrix


@pytest.fixture
def lockdep():
    """Dynamic lock-order tracking (the runtime half of RPR106).

    Locks *created* while the test runs are wrapped and keyed by their
    creation site; every held-lock -> new-lock acquisition records an
    edge, and the test fails at teardown if the ordering graph contains
    a cycle — a potential deadlock, reported even when the deadly
    interleaving never fired in this run.
    """
    from repro.analysis import lockdep as _lockdep

    tracker = _lockdep.LockOrderTracker()
    with _lockdep.installed(tracker):
        yield tracker
    cycles = tracker.cycles()
    assert not cycles, _lockdep.format_cycles(cycles)


@pytest.fixture
def rng():
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    """A fresh simulated A100."""
    return Device(A100_80GB)


@pytest.fixture
def blobs():
    """Small separable dataset: (X float32 (90, 5), y, k=3)."""
    x, y = make_blobs(90, 5, 3, rng=7)
    return x, y, 3


@pytest.fixture
def circles():
    """Non-linearly separable dataset: (X (240, 2), y, k=2)."""
    x, y = make_circles(240, rng=11)
    return x, y, 2


@pytest.fixture
def poly_kernel():
    """The paper's evaluation kernel: polynomial, gamma=c=1, degree 2."""
    return PolynomialKernel(gamma=1.0, coef0=1.0, degree=2)


@pytest.fixture
def small_kernel_matrix(rng):
    """A PSD kernel matrix (60x60, float64) plus labels and k."""
    x = rng.standard_normal((60, 4))
    k_mat = kernel_matrix(x, PolynomialKernel())
    labels = random_labels(60, 4, rng)
    return k_mat, labels, 4


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running tests")
