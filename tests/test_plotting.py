"""Tests for the ASCII chart helpers."""

import pytest

from repro.errors import ConfigError
from repro.plotting import bar_chart, grouped_bar_chart, scatter_plot


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], unit="x")
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "2x" in lines[1]

    def test_longest_bar_is_widest(self):
        out = bar_chart(["a", "b"], [1.0, 4.0], width=40)
        a, b = out.splitlines()
        assert b.count("#") > a.count("#")
        assert b.count("#") == 40

    def test_zero_value_no_bar(self):
        out = bar_chart(["z", "p"], [0.0, 1.0])
        assert out.splitlines()[0].count("#") == 0

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigError):
            bar_chart([], [])


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            ["g1", "g2"], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]}
        )
        lines = out.splitlines()
        assert lines[0] == "g1:"
        assert sum(1 for l in lines if l.endswith(":")) == 2
        assert sum(1 for l in lines if "#" in l) == 4

    def test_series_length_mismatch(self):
        with pytest.raises(ConfigError):
            grouped_bar_chart(["g1"], {"s": [1.0, 2.0]})


class TestScatter:
    def test_renders_grid(self):
        out = scatter_plot([(1, 1), (2, 2), (3, 1)], rows=5, cols=20)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # grid + axis line + 2 range lines
        assert out.count("*") == 3

    def test_log_axes(self):
        out = scatter_plot([(0.1, 10), (10, 1000)], logx=True, logy=True)
        assert "(log)" in out

    def test_log_requires_positive(self):
        with pytest.raises(ConfigError):
            scatter_plot([(0.0, 1.0)], logx=True)

    def test_custom_markers(self):
        out = scatter_plot([(1, 1, "P"), (2, 2, "B")], rows=8, cols=30)
        assert "P" in out and "B" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            scatter_plot([])

    def test_single_point(self):
        out = scatter_plot([(5.0, 7.0)])
        assert "*" in out
