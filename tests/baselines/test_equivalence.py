"""Cross-implementation equivalence: the paper's central correctness claim.

Popcorn, the baseline CUDA implementation, and the CPU PRMLT
implementation run the *same* alternating minimisation — from identical
initial assignments they must produce identical assignment trajectories.
Only their modeled costs differ.
"""

import numpy as np
import pytest

from repro.baselines import (
    BaselineCUDAKernelKMeans,
    PRMLTKernelKMeans,
    random_labels,
)
from repro.core import PopcornKernelKMeans
from repro.kernels import GaussianKernel, LinearKernel, PolynomialKernel


@pytest.mark.parametrize("kern", [LinearKernel(), PolynomialKernel(), GaussianKernel(gamma=0.5)],
                         ids=["linear", "poly", "gauss"])
@pytest.mark.parametrize("seed", [0, 1])
def test_three_implementations_agree(rng, kern, seed):
    x = np.random.default_rng(seed).standard_normal((60, 5)).astype(np.float64)
    k = 4
    init = random_labels(60, k, np.random.default_rng(seed + 100))
    common = dict(kernel=kern, max_iter=15, check_convergence=False)
    pop = PopcornKernelKMeans(k, dtype=np.float64, **common).fit(x, init_labels=init)
    cuda = BaselineCUDAKernelKMeans(k, dtype=np.float64, **common).fit(x, init_labels=init)
    cpu = PRMLTKernelKMeans(k, kernel=kern, max_iter=15, check_convergence=False).fit(
        x, init_labels=init
    )
    assert np.array_equal(pop.labels_, cuda.labels_)
    assert np.array_equal(pop.labels_, cpu.labels_)
    # objective trajectories agree too
    assert np.allclose(pop.objective_history_, cuda.objective_history_, rtol=1e-8)
    assert np.allclose(pop.objective_history_, cpu.objective_history_, rtol=1e-6)


def test_float32_popcorn_tracks_float64_reference(rng):
    """FP32 (the paper's precision) may diverge only by round-off ties."""
    x = rng.standard_normal((50, 4))
    k = 3
    init = random_labels(50, k, rng)
    f32 = PopcornKernelKMeans(k, dtype=np.float32, max_iter=5, check_convergence=False).fit(
        x, init_labels=init
    )
    f64 = PopcornKernelKMeans(k, dtype=np.float64, max_iter=5, check_convergence=False).fit(
        x, init_labels=init
    )
    # identical for well-separated random data at this scale
    agree = (f32.labels_ == f64.labels_).mean()
    assert agree > 0.95


class TestModeledCostContrasts:
    """The three implementations' modeled times must order correctly."""

    def _fit_all(self, rng, n=64, d=6, k=4):
        x = rng.standard_normal((n, d)).astype(np.float64)
        init = random_labels(n, k, rng)
        pop = PopcornKernelKMeans(k, dtype=np.float64, max_iter=10, check_convergence=False).fit(
            x, init_labels=init
        )
        cuda = BaselineCUDAKernelKMeans(
            k, dtype=np.float64, max_iter=10, check_convergence=False
        ).fit(x, init_labels=init)
        cpu = PRMLTKernelKMeans(k, max_iter=10, check_convergence=False).fit(x, init_labels=init)
        return pop, cuda, cpu

    def test_cpu_slowest(self, rng):
        pop, cuda, cpu = self._fit_all(rng)
        assert sum(cpu.timings_.values()) > sum(cuda.timings_.values())
        assert sum(cpu.timings_.values()) > sum(pop.timings_.values())

    def test_baseline_distance_phase_slower_than_popcorn_at_scale(self):
        """At executing (tiny) sizes the baseline's fewer launches can win —
        the small-problem penalty is part of the model (the SCOTUS anomaly).
        At paper scale Popcorn's distance phase must be faster."""
        from repro.modeling import model_baseline, model_popcorn

        p = model_popcorn(50000, 780, 50).phase_s("distances")
        b = model_baseline(50000, 780, 50).phase_s("distances")
        assert b > p


class TestBaselineCUDASpecifics:
    def test_baseline_uses_gemm_only(self, rng):
        x = rng.standard_normal((40, 4)).astype(np.float32)
        m = BaselineCUDAKernelKMeans(3, seed=0, max_iter=2).fit(x)
        assert m.device_.profiler.count_of("cublas.gemm") == 1
        assert m.device_.profiler.count_of("cublas.syrk") == 0

    def test_baseline_kernel_launch_names(self, rng):
        x = rng.standard_normal((30, 3)).astype(np.float32)
        m = BaselineCUDAKernelKMeans(2, seed=0, max_iter=3, check_convergence=False).fit(x)
        p = m.device_.profiler
        assert p.count_of("baseline.k1_cluster_reduce") == 3
        assert p.count_of("baseline.k2_centroid_norms") == 3
        assert p.count_of("baseline.k3_distance_assemble") == 3

    def test_baseline_memory_released(self, rng):
        from repro.gpu import A100_80GB, Device

        dev = Device(A100_80GB)
        x = rng.standard_normal((30, 3)).astype(np.float32)
        BaselineCUDAKernelKMeans(2, device=dev, seed=0, max_iter=2).fit(x)
        assert dev.allocated_bytes == 0

    def test_baseline_gaussian_kernel(self, rng):
        x = rng.standard_normal((30, 3)).astype(np.float64)
        init = random_labels(30, 3, rng)
        kern = GaussianKernel(gamma=0.7)
        b = BaselineCUDAKernelKMeans(3, kernel=kern, dtype=np.float64, max_iter=5).fit(
            x, init_labels=init
        )
        p = PopcornKernelKMeans(3, kernel=kern, dtype=np.float64, max_iter=5).fit(
            x, init_labels=init
        )
        assert np.array_equal(b.labels_, p.labels_)

    def test_baseline_precomputed_kernel(self, rng):
        x = rng.standard_normal((25, 3))
        km = PolynomialKernel().pairwise(x.astype(np.float64))
        init = random_labels(25, 2, rng)
        a = BaselineCUDAKernelKMeans(2, dtype=np.float64).fit(kernel_matrix=km, init_labels=init)
        b = PopcornKernelKMeans(2, dtype=np.float64).fit(kernel_matrix=km, init_labels=init)
        assert np.array_equal(a.labels_, b.labels_)


class TestPRMLTSpecifics:
    def test_phases_recorded(self, rng):
        x = rng.standard_normal((30, 4))
        m = PRMLTKernelKMeans(3, seed=0, max_iter=4, check_convergence=False).fit(x)
        assert m.timings_["kernel_matrix"] > 0
        assert m.timings_["clustering"] > 0

    def test_cpu_iteration_launches(self, rng):
        x = rng.standard_normal((20, 3))
        m = PRMLTKernelKMeans(2, seed=0, max_iter=5, check_convergence=False).fit(x)
        assert m.profiler_.count_of("cpu.kkmeans_iteration") == 5

    def test_precomputed_kernel_path(self, rng):
        x = rng.standard_normal((20, 3))
        km = PolynomialKernel().pairwise(x)
        m = PRMLTKernelKMeans(2, seed=0, max_iter=3).fit(kernel_matrix=km)
        assert m.labels_.shape == (20,)
