"""Tests for classical Lloyd K-means and the initialisation strategies."""

import numpy as np
import pytest

from repro.baselines import (
    LloydKMeans,
    kernel_kmeans_pp_labels,
    kmeans_pp_centers,
    labels_from_centers,
    random_labels,
)
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.eval import adjusted_rand_index
from repro.kernels import PolynomialKernel


class TestLloyd:
    def test_recovers_blobs(self):
        x, y = make_blobs(200, 4, 4, rng=5)
        m = LloydKMeans(4, seed=0).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.95

    def test_inertia_monotone(self):
        x, _ = make_blobs(150, 3, 3, rng=2)
        m = LloydKMeans(3, seed=0).fit(x)
        h = m.objective_history_
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_centers_shape(self):
        x, _ = make_blobs(100, 5, 3, rng=1)
        m = LloydKMeans(3, seed=0).fit(x)
        assert m.centers_.shape == (3, 5)

    def test_predict_consistent_with_fit(self):
        x, _ = make_blobs(120, 3, 3, rng=4)
        m = LloydKMeans(3, seed=0).fit(x)
        assert np.array_equal(m.predict(x), m.labels_)

    def test_random_init(self):
        x, y = make_blobs(150, 3, 3, rng=6)
        m = LloydKMeans(3, init="random", seed=0).fit(x)
        assert m.labels_.shape == (150,)

    def test_init_labels(self, rng):
        x, _ = make_blobs(60, 2, 3, rng=8)
        init = random_labels(60, 3, rng)
        m = LloydKMeans(3, max_iter=1).fit(x, init_labels=init)
        assert m.n_iter_ == 1

    def test_kmeanspp_at_least_as_good_on_average(self):
        """k-means++ should not lose to random init across seeds (mean inertia)."""
        x, _ = make_blobs(200, 2, 6, rng=9, spread=1.0)
        rand_inertia = np.mean(
            [LloydKMeans(6, init="random", seed=s).fit(x).inertia_ for s in range(5)]
        )
        pp_inertia = np.mean(
            [LloydKMeans(6, init="k-means++", seed=s).fit(x).inertia_ for s in range(5)]
        )
        assert pp_inertia <= rand_inertia * 1.05

    def test_k_exceeds_n(self):
        with pytest.raises(ConfigError):
            LloydKMeans(10).fit(np.zeros((5, 2)))

    def test_bad_init_name(self):
        with pytest.raises(ConfigError):
            LloydKMeans(2, init="bogus")

    def test_duplicate_points_ok(self):
        x = np.ones((20, 2), dtype=np.float64)
        m = LloydKMeans(3, seed=0).fit(x)
        assert m.inertia_ == pytest.approx(0.0, abs=1e-9)


class TestRandomLabels:
    def test_every_cluster_nonempty(self, rng):
        for _ in range(10):
            lab = random_labels(20, 7, rng)
            assert len(np.unique(lab)) == 7

    def test_range_and_dtype(self, rng):
        lab = random_labels(50, 5, rng)
        assert lab.dtype == np.int32
        assert lab.min() >= 0 and lab.max() < 5

    def test_k_equals_n(self, rng):
        lab = random_labels(6, 6, rng)
        assert sorted(lab) == list(range(6))

    def test_invalid_k(self, rng):
        with pytest.raises(ConfigError):
            random_labels(5, 6, rng)
        with pytest.raises(ConfigError):
            random_labels(5, 0, rng)


class TestKMeansPP:
    def test_centers_distinct(self, rng):
        x, _ = make_blobs(100, 3, 5, rng=3)
        c = kmeans_pp_centers(x, 5, rng)
        assert len(np.unique(c)) == 5

    def test_degenerate_identical_points(self, rng):
        x = np.ones((10, 2))
        c = kmeans_pp_centers(x, 3, rng)
        assert len(np.unique(c)) == 3  # falls back to distinct sampling

    def test_labels_from_centers(self, rng):
        x, _ = make_blobs(60, 2, 3, rng=2)
        c = kmeans_pp_centers(x, 3, rng)
        lab = labels_from_centers(x, c)
        # each center's own point belongs to its cluster
        for j, ci in enumerate(c):
            assert lab[ci] == j


class TestKernelKMeansPP:
    def test_valid_labels(self, rng):
        x = rng.standard_normal((40, 3))
        km = PolynomialKernel().pairwise(x)
        lab = kernel_kmeans_pp_labels(km, 4, rng)
        assert lab.shape == (40,)
        assert lab.min() >= 0 and lab.max() < 4

    def test_degenerate_kernel(self, rng):
        km = np.ones((10, 10))  # all points identical in feature space
        lab = kernel_kmeans_pp_labels(km, 3, rng)
        assert lab.shape == (10,)

    def test_separated_blobs_seeded_apart(self, rng):
        """On well-separated blobs, k-means++ seeds land one per blob."""
        x, y = make_blobs(90, 3, 3, rng=1, spread=0.2, center_box=50.0)
        km = (x @ x.T).astype(np.float64)
        lab = kernel_kmeans_pp_labels(km, 3, rng)
        assert adjusted_rand_index(lab, y) > 0.9
