"""Tests for Elkan's triangle-inequality-accelerated k-means."""

import numpy as np
import pytest

from repro.baselines import ElkanKMeans, LloydKMeans, random_labels
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.eval import adjusted_rand_index


class TestElkanCorrectness:
    def test_matches_lloyd_inertia(self):
        """Elkan is exact: same local optimum as Lloyd from the same init."""
        x, _ = make_blobs(200, 4, 5, rng=3)
        init = random_labels(200, 5, np.random.default_rng(0))
        e = ElkanKMeans(5, seed=0, tol=1e-10).fit(x, init_labels=init)
        l = LloydKMeans(5, seed=0, tol=1e-10).fit(x, init_labels=init)
        assert e.inertia_ == pytest.approx(l.inertia_, rel=1e-6)

    def test_matches_lloyd_labels(self):
        x, _ = make_blobs(150, 3, 4, rng=7)
        init = random_labels(150, 4, np.random.default_rng(1))
        e = ElkanKMeans(4, seed=0, tol=1e-10).fit(x, init_labels=init)
        l = LloydKMeans(4, seed=0, tol=1e-10).fit(x, init_labels=init)
        assert np.array_equal(e.labels_, l.labels_)

    def test_recovers_blobs(self):
        x, y = make_blobs(300, 5, 4, rng=5)
        e = ElkanKMeans(4, seed=0).fit(x)
        assert adjusted_rand_index(e.labels_, y) > 0.95

    def test_centers_shape(self):
        x, _ = make_blobs(100, 6, 3, rng=2)
        e = ElkanKMeans(3, seed=0).fit(x)
        assert e.centers_.shape == (3, 6)

    def test_fit_predict(self):
        x, _ = make_blobs(80, 3, 3, rng=4)
        m = ElkanKMeans(3, seed=0)
        assert np.array_equal(m.fit_predict(x), m.labels_)


class TestElkanPruning:
    def test_prunes_on_separated_blobs(self):
        """Well-separated clusters: most distances provably skippable.

        With k-means++ on clean blobs Elkan converges in one iteration,
        paying only the initial full pass — half of what Lloyd's two
        passes would cost; with overlapping blobs multiple iterations
        still prune a substantial fraction.
        """
        x, _ = make_blobs(400, 4, 8, rng=1, spread=0.3, center_box=50.0)
        e = ElkanKMeans(8, seed=0).fit(x)
        assert e.pruned_fraction_ >= 0.5
        assert e.distance_computations_ < e.distance_computations_lloyd_

        x2, _ = make_blobs(400, 4, 8, rng=1, spread=2.0, center_box=8.0)
        e2 = ElkanKMeans(8, seed=0).fit(x2)
        assert e2.n_iter_ > 1
        assert e2.pruned_fraction_ > 0.3

    def test_statistics_consistent(self):
        x, _ = make_blobs(100, 3, 4, rng=9)
        e = ElkanKMeans(4, seed=0).fit(x)
        assert e.distance_computations_ >= 100 * 4  # at least the init pass
        assert 0.0 <= e.pruned_fraction_ < 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ElkanKMeans(0)
        with pytest.raises(ConfigError):
            ElkanKMeans(2, init="magic")
        with pytest.raises(ConfigError):
            ElkanKMeans(10).fit(np.zeros((4, 2)))
