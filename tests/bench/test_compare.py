"""Unit coverage of the regression-gate semantics (no experiment runs)."""

import pytest

from repro.bench import SCHEMA_VERSION, compare_artifacts, format_comparison
from repro.errors import ConfigError


def make_artifact(metrics, exp_id="exp", probe_mean=None):
    probe = None
    if probe_mean is not None:
        probe = {
            "n_trials": 2,
            "total_time": {"mean": probe_mean, "std": 0.0, "min": probe_mean, "max": probe_mean},
            "objective": {"mean": 1.0, "std": 0.0, "min": 1.0, "max": 1.0},
            "n_iter": {"mean": 5, "std": 0.0, "min": 5, "max": 5},
            "phases": {},
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "experiments": {
            exp_id: {
                "title": "t",
                "group": "figure",
                "headers": ["a"],
                "rows": [[1]],
                "metrics": dict(metrics),
                "probe": probe,
                "wall_time_s": 0.1,
            }
        },
    }


class TestThresholdEdges:
    def test_exactly_at_threshold_is_not_a_regression(self):
        old = make_artifact({"time.x": 1.0})
        new = make_artifact({"time.x": 1.2})
        assert compare_artifacts(old, new, threshold=0.2).ok

    def test_just_past_threshold_regresses(self):
        old = make_artifact({"time.x": 1.0})
        new = make_artifact({"time.x": 1.21})
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert not cmp.ok

    def test_improvement_is_flagged_not_failed(self):
        old = make_artifact({"time.x": 1.0})
        new = make_artifact({"time.x": 0.5})
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert cmp.ok and len(cmp.improvements) == 1

    def test_zero_old_value(self):
        old = make_artifact({"time.x": 0.0})
        same = make_artifact({"time.x": 0.0})
        worse = make_artifact({"time.x": 0.5})
        assert compare_artifacts(old, same, threshold=0.2).ok
        assert not compare_artifacts(old, worse, threshold=0.2).ok

    def test_zero_old_value_respects_direction(self):
        """A higher-is-better metric rising from 0 is an improvement, not inf-regression."""
        old = make_artifact({"throughput.x": 0.0})
        better = make_artifact({"throughput.x": 5.0})
        cmp = compare_artifacts(old, better, threshold=0.2)
        assert cmp.ok
        assert len(cmp.improvements) == 1
        # ...and dropping TO zero on a higher-is-better metric is a regression
        assert not compare_artifacts(better, old, threshold=0.2).ok

    def test_bad_threshold(self):
        a = make_artifact({"time.x": 1.0})
        with pytest.raises(ConfigError, match="threshold"):
            compare_artifacts(a, a, threshold=0.0)


class TestCoverageSemantics:
    def test_probe_mean_is_gated(self):
        old = make_artifact({}, probe_mean=1.0)
        new = make_artifact({}, probe_mean=1.5)
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert [d.metric for d in cmp.regressions] == ["time.probe_total_mean_s"]

    def test_missing_experiment_in_new_is_warned_not_failed(self):
        old = make_artifact({"time.x": 1.0}, exp_id="gone")
        new = make_artifact({"time.x": 1.0}, exp_id="fresh")
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert cmp.ok
        assert cmp.missing_experiments == ("gone",)
        assert cmp.new_experiments == ("fresh",)
        report = format_comparison(cmp)
        assert "gone" in report and "fresh" in report

    def test_metric_only_in_new_is_ignored(self):
        old = make_artifact({"time.x": 1.0})
        new = make_artifact({"time.x": 1.0, "time.extra": 99.0})
        assert compare_artifacts(old, new, threshold=0.2).ok


class TestFormatting:
    def test_report_names_regressed_metric_and_verdict(self):
        old = make_artifact({"time.x": 1.0, "quality.q": 0.9})
        new = make_artifact({"time.x": 2.0, "quality.q": 0.9})
        cmp = compare_artifacts(old, new, threshold=0.2)
        report = format_comparison(cmp)
        assert "REGRESSION" in report
        assert "time.x" in report
        assert "1 regression(s) past the 20% threshold" in report

    def test_only_changed_filters_ok_rows(self):
        old = make_artifact({"time.x": 1.0, "time.y": 1.0})
        new = make_artifact({"time.x": 2.0, "time.y": 1.0})
        report = format_comparison(
            compare_artifacts(old, new, threshold=0.2), only_changed=True
        )
        assert "time.x" in report and "time.y" not in report

    def test_clean_report_states_no_regressions(self):
        a = make_artifact({"time.x": 1.0})
        report = format_comparison(compare_artifacts(a, a, threshold=0.2))
        assert "no regressions" in report


class TestMetricFilters:
    """The CI split: deterministic metrics block, probe wall-times warn."""

    def test_exclude_prefix_drops_probe_regression(self):
        old = make_artifact({"time.model_s": 1.0}, probe_mean=1.0)
        new = make_artifact({"time.model_s": 1.0}, probe_mean=10.0)
        assert not compare_artifacts(old, new, threshold=0.2).ok
        assert compare_artifacts(old, new, threshold=0.2, exclude=("time.probe",)).ok

    def test_exclude_does_not_mask_modeled_time(self):
        old = make_artifact({"time.model_s": 1.0}, probe_mean=1.0)
        new = make_artifact({"time.model_s": 2.0}, probe_mean=1.0)
        cmp = compare_artifacts(old, new, threshold=0.2, exclude=("time.probe",))
        assert not cmp.ok
        assert cmp.regressions[0].metric == "time.model_s"

    def test_include_prefixes_select_only_matches(self):
        old = make_artifact({"time.x": 1.0, "quality.ari": 1.0})
        new = make_artifact({"time.x": 9.0, "quality.ari": 1.0})
        cmp = compare_artifacts(old, new, threshold=0.2, include=("quality.",))
        assert cmp.ok
        assert all(d.metric.startswith("quality.") for d in cmp.deltas)

    def test_exclude_wins_over_include(self):
        old = make_artifact({"time.probe_total_mean_s_like": 1.0, "time.x": 1.0})
        new = make_artifact({"time.probe_total_mean_s_like": 9.0, "time.x": 1.0})
        cmp = compare_artifacts(
            old, new, threshold=0.2, include=("time.",), exclude=("time.probe",)
        )
        assert cmp.ok

    def test_comm_kind_is_lower_is_better(self):
        from repro.bench.artifact import metric_lower_is_better

        assert metric_lower_is_better("comm.sharded_g8_comm_s")
        old = make_artifact({"comm.s": 1.0})
        assert not compare_artifacts(old, make_artifact({"comm.s": 2.0})).ok
        assert compare_artifacts(old, make_artifact({"comm.s": 0.1})).ok
