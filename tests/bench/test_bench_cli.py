"""End-to-end coverage of the repro-bench CLI (list / run / compare)."""

import json

from repro.bench import SCHEMA_VERSION, load_artifact
from repro.bench.cli import main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "24 experiments registered" in out
    for exp_id in ("table2", "fig5", "ablation_norms", "ext_engine_tiling", "ext_strong_scaling"):
        assert exp_id in out


def test_run_only_writes_json_and_csv(tmp_path, capsys):
    out_json = tmp_path / "bench.json"
    rc = main(
        [
            "run",
            "--only",
            "table2,fig7",
            "--quick",
            "--csv",
            "--trials",
            "1",
            "--out",
            str(out_json),
            "--results-dir",
            str(tmp_path / "results"),
        ]
    )
    assert rc == 0
    art = load_artifact(str(out_json))
    assert set(art["experiments"]) == {"table2", "fig7"}
    assert (tmp_path / "results" / "fig7.csv").exists()
    assert (tmp_path / "results" / "table2.csv").exists()
    assert "=== fig7:" in capsys.readouterr().out


def test_run_quick_skips_csv_by_default(tmp_path):
    rc = main(
        [
            "run",
            "--only",
            "table2",
            "--quick",
            "--trials",
            "1",
            "--out",
            str(tmp_path / "b.json"),
            "--results-dir",
            str(tmp_path / "results"),
        ]
    )
    assert rc == 0
    assert not (tmp_path / "results").exists()


def test_run_parallel_jobs_matches_serial(tmp_path):
    kwargs = ["--quick", "--trials", "1", "--no-csv", "--only", "fig7,ext_engine_tiling"]
    assert main(["run", *kwargs, "--out", str(tmp_path / "serial.json")]) == 0
    assert main(["run", *kwargs, "--jobs", "2", "--out", str(tmp_path / "par.json")]) == 0
    serial = json.loads((tmp_path / "serial.json").read_text())["experiments"]
    par = json.loads((tmp_path / "par.json").read_text())["experiments"]
    assert set(serial) == set(par)
    for exp_id in serial:
        assert serial[exp_id]["metrics"] == par[exp_id]["metrics"]
        assert serial[exp_id]["rows"] == par[exp_id]["rows"]


def test_run_rejects_unknown_and_empty_selection(capsys):
    assert main(["run", "--only", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
    assert main(["run"]) == 2
    assert "--all or --only" in capsys.readouterr().err


def test_compare_exit_codes(tmp_path, capsys):
    base = main(
        [
            "run",
            "--only",
            "fig7",
            "--quick",
            "--trials",
            "1",
            "--no-csv",
            "--out",
            str(tmp_path / "old.json"),
        ]
    )
    assert base == 0
    # identical inputs -> exit 0
    assert main(["compare", str(tmp_path / "old.json"), str(tmp_path / "old.json")]) == 0
    assert "no regressions" in capsys.readouterr().out
    # injected 25% slowdown -> exit 1 at the default 20% threshold
    art = json.loads((tmp_path / "old.json").read_text())
    art["experiments"]["fig7"]["metrics"]["time.popcorn_total_s"] *= 1.25
    (tmp_path / "new.json").write_text(json.dumps(art))
    assert main(["compare", str(tmp_path / "old.json"), str(tmp_path / "new.json")]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # ...but a looser threshold tolerates it
    assert (
        main(
            [
                "compare",
                str(tmp_path / "old.json"),
                str(tmp_path / "new.json"),
                "--threshold",
                "0.5",
            ]
        )
        == 0
    )


def test_compare_schema_error_is_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": 99, "experiments": {}}))
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"schema_version": SCHEMA_VERSION, "experiments": {}}))
    assert main(["compare", str(bad), str(good)]) == 2
    assert "schema_version" in capsys.readouterr().err
    assert main(["compare", str(tmp_path / "missing.json"), str(good)]) == 2


def test_run_out_creates_parent_dirs(tmp_path):
    out = tmp_path / "deep" / "nested" / "b.json"
    rc = main(
        ["run", "--only", "table2", "--quick", "--trials", "1", "--no-csv", "--out", str(out)]
    )
    assert rc == 0
    assert out.exists()


def test_emit_creates_results_dir(tmp_path):
    """paperfig.emit / the runner create missing results directories."""
    from repro.bench import RunConfig, run_experiment

    target = tmp_path / "not" / "there" / "yet"
    assert not target.exists()
    run_experiment(
        "table2", RunConfig(quick=True, n_trials=1), results_dir=str(target), write_csv=True
    )
    assert (target / "table2.csv").exists()
