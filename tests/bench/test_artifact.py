"""Round-trip coverage of the BENCH_results.json schema."""

import json

import pytest

from repro.bench import (
    RunConfig,
    SCHEMA_VERSION,
    compare_artifacts,
    load_artifact,
    run_experiments,
    tracked_metrics,
    write_artifact,
)
from repro.errors import ConfigError

QUICK_IDS = ["table2", "fig7", "ext_engine_tiling"]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A real quick-mode artifact over a 3-experiment subset."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_results.json"
    art, failures = run_experiments(
        QUICK_IDS,
        RunConfig(quick=True, n_trials=1),
        out=str(out),
        write_csv=False,
        echo=lambda *a, **k: None,
    )
    assert not failures
    return art, out


class TestRoundTrip:
    def test_write_then_load_preserves_everything(self, artifact):
        art, out = artifact
        loaded = load_artifact(str(out))
        assert loaded == json.loads(json.dumps(art))  # tuples become lists
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert set(loaded["experiments"]) == set(QUICK_IDS)

    def test_schema_sections(self, artifact):
        art, _ = artifact
        assert art["generated_by"] == "repro.bench"
        assert art["config"]["quick"] is True
        for key in ("python", "numpy", "scipy", "platform"):
            assert key in art["environment"]
        assert art["device_model"]["name"].startswith("NVIDIA")
        assert art["total_wall_time_s"] > 0
        rec = art["experiments"]["fig7"]
        assert rec["group"] == "figure"
        assert rec["probe"]["total_time"]["mean"] >= 0
        assert "distances" in rec["probe"]["phases"]

    def test_tracked_metrics_include_probe_time(self, artifact):
        art, _ = artifact
        metrics = tracked_metrics(art["experiments"]["fig7"])
        assert "time.popcorn_total_s" in metrics
        assert "time.probe_total_mean_s" in metrics

    def test_compare_unchanged_run_passes(self, artifact):
        """write -> load -> compare: an identical artifact never regresses."""
        _, out = artifact
        a = load_artifact(str(out))
        b = load_artifact(str(out))
        cmp = compare_artifacts(a, b, threshold=0.2)
        assert cmp.ok
        assert not cmp.regressions
        assert len(cmp.deltas) > 0

    def test_compare_detects_injected_25pct_slowdown(self, artifact):
        """A 25% rise in a tracked time metric trips the 20% threshold."""
        _, out = artifact
        old = load_artifact(str(out))
        new = json.loads(json.dumps(old))
        new["experiments"]["fig7"]["metrics"]["time.popcorn_total_s"] *= 1.25
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert not cmp.ok
        [reg] = cmp.regressions
        assert reg.exp_id == "fig7"
        assert reg.metric == "time.popcorn_total_s"
        assert reg.change == pytest.approx(0.25)

    def test_compare_detects_throughput_drop(self, artifact):
        """higher-is-better metrics regress when they *fall*."""
        _, out = artifact
        old = load_artifact(str(out))
        old["experiments"]["fig7"]["metrics"]["throughput.fake_gflops"] = 100.0
        new = json.loads(json.dumps(old))
        new["experiments"]["fig7"]["metrics"]["throughput.fake_gflops"] = 70.0
        cmp = compare_artifacts(old, new, threshold=0.2)
        assert [d.metric for d in cmp.regressions] == ["throughput.fake_gflops"]
        # and a throughput *rise* is an improvement, not a regression
        up = json.loads(json.dumps(old))
        up["experiments"]["fig7"]["metrics"]["throughput.fake_gflops"] = 150.0
        cmp_up = compare_artifacts(old, up, threshold=0.2)
        assert cmp_up.ok and len(cmp_up.improvements) == 1


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_artifact(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_artifact(str(p))

    def test_wrong_schema_version(self, tmp_path):
        p = tmp_path / "v99.json"
        p.write_text(json.dumps({"schema_version": 99, "experiments": {}}))
        with pytest.raises(ConfigError, match="schema_version"):
            load_artifact(str(p))

    def test_missing_experiments_section(self, tmp_path):
        p = tmp_path / "noexp.json"
        p.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ConfigError, match="experiments"):
            load_artifact(str(p))

    def test_experiment_without_metrics(self, tmp_path):
        p = tmp_path / "nometrics.json"
        p.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION, "experiments": {"x": {"rows": []}}})
        )
        with pytest.raises(ConfigError, match="metrics"):
            load_artifact(str(p))

    def test_write_artifact_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "BENCH.json"
        write_artifact(str(path), {"schema_version": SCHEMA_VERSION, "experiments": {}})
        assert path.exists()

    def test_unknown_metric_kind_rejected(self):
        from repro.bench.artifact import metric_lower_is_better

        assert metric_lower_is_better("time.x")
        assert not metric_lower_is_better("quality.x")
        with pytest.raises(ConfigError, match="kind"):
            metric_lower_is_better("banana.x")


def test_committed_baseline_is_loadable_and_current():
    """The CI baseline artifact in the repo parses under this schema."""
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    baseline = os.path.join(here, "..", "..", "benchmarks", "baseline", "BENCH_baseline.json")
    art = load_artifact(baseline)
    assert art["config"]["quick"] is True
    assert len(art["experiments"]) == 24
