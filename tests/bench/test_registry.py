"""Registry discoverability + quick-mode runnability of all 24 experiments."""

import pytest

from repro.bench import (
    ExperimentResult,
    ExperimentSpec,
    RunConfig,
    all_experiments,
    experiment_ids,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.errors import ConfigError

EXPECTED_IDS = {
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "ablation_dense_vs_sparse",
    "ablation_norms",
    "ablation_threshold",
    "ext_device_sweep",
    "ext_distributed",
    "ext_memory_wall",
    "ext_nystrom",
    "ext_spectral",
    "ext_strong_scaling",
    "ext_engine_tiling",
    "ext_reduction_engine",
    "ext_minibatch",
    "ext_observability",
    "ext_async_serving",
    "serve_throughput",
    "model_selection",
}


class TestDiscovery:
    def test_all_24_experiments_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS
        assert len(experiment_ids()) == 24

    def test_paper_order(self):
        ids = experiment_ids()
        assert ids[0] == "table2"
        assert ids.index("fig2") < ids.index("fig8") < ids.index("ablation_norms")
        assert ids.index("ablation_norms") < ids.index("ext_engine_tiling")

    def test_specs_are_complete(self):
        for spec in all_experiments():
            assert spec.title
            assert spec.group in ("table", "figure", "ablation", "extension")
            assert callable(spec.run)
            assert spec.probe is not None  # every experiment has a perf probe

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(ConfigError, match="fig7"):
            get_experiment("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("fig7")
        with pytest.raises(ConfigError, match="already registered"):
            register_experiment(spec)

    def test_bad_group_rejected(self):
        bad = ExperimentSpec(
            exp_id="bad_group",
            title="x",
            group="banana",
            run=lambda cfg: ExperimentResult(headers=("a",), rows=((1,),)),
        )
        with pytest.raises(ConfigError, match="group"):
            register_experiment(bad)


@pytest.mark.parametrize("exp_id", sorted(EXPECTED_IDS))
def test_quick_mode_runnable(exp_id, tmp_path):
    """Every registered experiment runs end to end in --quick mode."""
    record, text = run_experiment(
        exp_id,
        RunConfig(quick=True, n_trials=1),
        results_dir=str(tmp_path),
        write_csv=True,
    )
    assert record["headers"] and record["rows"]
    assert record["wall_time_s"] > 0
    assert record["probe"] is not None
    assert record["probe"]["n_trials"] == 1
    assert exp_id in text
    assert (tmp_path / f"{exp_id}.csv").exists()
    # every row matches the header width
    width = len(record["headers"])
    assert all(len(r) == width for r in record["rows"])


def test_full_mode_rows_match_seed_csv_shape():
    """Full-mode fig7 reproduces the paper grid: 6 datasets x 3 k values."""
    record, _ = run_experiment("fig7", RunConfig(), write_csv=False)
    assert len(record["rows"]) == 18
    assert record["metrics"]["quality.min_speedup"] > 1.0


def test_quick_trials_default():
    assert RunConfig(quick=True).trials() == 2
    assert RunConfig().trials() == 4
    assert RunConfig(quick=True, n_trials=7).trials() == 7
    with pytest.raises(ConfigError):
        RunConfig(n_trials=0).trials()
