"""Tests for dataset generators, the Table 2 suite, and file I/O."""

import numpy as np
import pytest

from repro.data import (
    TABLE2,
    dataset_names,
    generate,
    load_dataset,
    make_anisotropic,
    make_blobs,
    make_circles,
    make_moons,
    make_random,
    read_csv,
    read_libsvm,
    table2_rows,
    write_csv,
    write_libsvm,
)
from repro.errors import DatasetError


class TestGenerators:
    def test_blobs_shapes_and_dtypes(self):
        x, y = make_blobs(100, 6, 4, rng=0)
        assert x.shape == (100, 6) and x.dtype == np.float32
        assert y.shape == (100,) and y.dtype == np.int32
        assert set(np.unique(y)) == {0, 1, 2, 3}

    def test_blobs_uneven_split(self):
        x, y = make_blobs(10, 2, 3, rng=0)
        counts = np.bincount(y)
        assert counts.sum() == 10
        assert max(counts) - min(counts) <= 1

    def test_blobs_deterministic(self):
        x1, y1 = make_blobs(50, 3, 2, rng=9)
        x2, y2 = make_blobs(50, 3, 2, rng=9)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_blobs_invalid(self):
        with pytest.raises(DatasetError):
            make_blobs(2, 2, 5)

    def test_circles_two_radii(self):
        x, y = make_circles(300, noise=0.0, rng=1)
        r = np.linalg.norm(x, axis=1)
        assert r[y == 0].mean() == pytest.approx(1.0, abs=0.05)
        assert r[y == 1].mean() == pytest.approx(0.3, abs=0.05)

    def test_circles_factor_validation(self):
        with pytest.raises(DatasetError):
            make_circles(100, factor=1.5)

    def test_moons_shapes(self):
        x, y = make_moons(101, rng=2)
        assert x.shape == (101, 2)
        assert np.bincount(y).tolist() in ([51, 50], [50, 51])

    def test_anisotropic(self):
        x, y = make_anisotropic(90, 3, 3, rng=4)
        assert x.shape == (90, 3)

    def test_random_uniform(self):
        x, y = make_random(200, 5, rng=3)
        assert x.min() >= 0 and x.max() < 1
        assert np.all(y == 0)

    def test_random_invalid(self):
        with pytest.raises(DatasetError):
            make_random(0, 5)


class TestTable2Suite:
    def test_exact_paper_dimensions(self):
        """Table 2, verbatim."""
        expect = {
            "acoustic": (78823, 50),
            "cifar10": (50000, 3072),
            "ledgar": (70000, 19996),
            "letter": (10500, 26),
            "mnist": (60000, 780),
            "scotus": (6400, 126405),
        }
        for name, (n, d) in expect.items():
            assert TABLE2[name].n == n
            assert TABLE2[name].d == d

    def test_names_order(self):
        assert dataset_names() == ["acoustic", "cifar10", "ledgar", "letter", "mnist", "scotus"]

    def test_rows(self):
        rows = table2_rows()
        assert len(rows) == 6
        assert rows[0][0] == "acoustic"

    def test_generate_scaled(self):
        x, y = generate("letter", scale=0.01, rng=0)
        assert x.shape == (105, 2)  # 10500*0.01, max(2, 26*0.01)

    def test_generate_unknown(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            generate("imagenet")

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            TABLE2["letter"].scaled(0.0)
        with pytest.raises(DatasetError):
            TABLE2["letter"].scaled(2.0)


class TestLibsvmIO:
    def test_round_trip(self, tmp_path, rng):
        x = rng.standard_normal((8, 5)).astype(np.float32)
        x[np.abs(x) < 0.4] = 0
        y = rng.integers(0, 3, 8).astype(np.int32)
        path = str(tmp_path / "data.libsvm")
        write_libsvm(path, x, y)
        x2, y2 = read_libsvm(path, n_features=5)
        assert np.allclose(x2, x, atol=1e-5)
        assert np.array_equal(y2, y)

    def test_feature_count_inferred(self, tmp_path):
        path = str(tmp_path / "f.libsvm")
        with open(path, "w") as fh:
            fh.write("1 1:0.5 3:0.25\n0 2:1.0\n")
        x, y = read_libsvm(path)
        assert x.shape == (2, 3)
        assert x[0, 0] == pytest.approx(0.5)
        assert x[0, 2] == pytest.approx(0.25)
        assert x[1, 1] == pytest.approx(1.0)
        assert np.array_equal(y, [1, 0])

    def test_empty_rows_allowed(self, tmp_path):
        path = str(tmp_path / "e.libsvm")
        with open(path, "w") as fh:
            fh.write("1\n0 1:2.0\n")
        x, y = read_libsvm(path)
        assert x.shape == (2, 1)
        assert x[0, 0] == 0.0

    def test_unsorted_indices_handled(self, tmp_path):
        path = str(tmp_path / "u.libsvm")
        with open(path, "w") as fh:
            fh.write("1 3:3.0 1:1.0\n")
        x, _ = read_libsvm(path)
        assert x[0, 0] == 1.0 and x[0, 2] == 3.0

    def test_bad_label(self, tmp_path):
        path = str(tmp_path / "b.libsvm")
        with open(path, "w") as fh:
            fh.write("abc 1:1.0\n")
        with pytest.raises(DatasetError, match="bad label"):
            read_libsvm(path)

    def test_bad_token(self, tmp_path):
        path = str(tmp_path / "b2.libsvm")
        with open(path, "w") as fh:
            fh.write("1 1:one\n")
        with pytest.raises(DatasetError, match="bad feature token"):
            read_libsvm(path)

    def test_zero_based_index_rejected(self, tmp_path):
        path = str(tmp_path / "z.libsvm")
        with open(path, "w") as fh:
            fh.write("1 0:1.0\n")
        with pytest.raises(DatasetError, match="1-based"):
            read_libsvm(path)

    def test_index_exceeds_forced_features(self, tmp_path):
        path = str(tmp_path / "x.libsvm")
        with open(path, "w") as fh:
            fh.write("1 9:1.0\n")
        with pytest.raises(DatasetError, match="exceeds"):
            read_libsvm(path, n_features=5)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = str(tmp_path / "c.libsvm")
        with open(path, "w") as fh:
            fh.write("# header\n\n1 1:1.0\n")
        x, y = read_libsvm(path)
        assert x.shape == (1, 1)


class TestCsvIO:
    def test_round_trip_with_labels(self, tmp_path, rng):
        x = rng.standard_normal((6, 3))
        y = rng.integers(0, 2, 6).astype(np.int32)
        path = str(tmp_path / "d.csv")
        write_csv(path, x, y)
        x2, y2 = read_csv(path, label_column=-1)
        assert np.allclose(x2, x, atol=1e-5)
        assert np.array_equal(y2, y)

    def test_no_labels(self, tmp_path, rng):
        x = rng.standard_normal((4, 2))
        path = str(tmp_path / "n.csv")
        write_csv(path, x)
        x2, y2 = read_csv(path)
        assert y2 is None
        assert np.allclose(x2, x, atol=1e-5)

    def test_label_column_out_of_range(self, tmp_path, rng):
        path = str(tmp_path / "o.csv")
        write_csv(path, rng.standard_normal((3, 2)))
        with pytest.raises(DatasetError, match="out of range"):
            read_csv(path, label_column=5)

    def test_non_numeric_rejected(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("a,b,c\n1,2,3\n")
        with pytest.raises(DatasetError, match="numeric"):
            read_csv(path)


class TestLoadDispatch:
    def test_csv_extension(self, tmp_path, rng):
        path = str(tmp_path / "d.csv")
        write_csv(path, rng.standard_normal((3, 2)))
        x, y = load_dataset(path)
        assert x.shape == (3, 2)

    def test_libsvm_default(self, tmp_path, rng):
        x = rng.standard_normal((3, 2)).astype(np.float32)
        path = str(tmp_path / "d.libsvm")
        write_libsvm(path, x)
        x2, _ = load_dataset(path)
        assert x2.shape[0] == 3

    def test_missing_file(self):
        with pytest.raises(DatasetError, match="no such"):
            load_dataset("/nonexistent/file.csv")

    def test_dataset_error_is_config_error(self):
        """Dataset failures surface as ConfigError, never a bare traceback."""
        from repro.errors import ConfigError

        assert issubclass(DatasetError, ConfigError)
        with pytest.raises(ConfigError, match="no such"):
            load_dataset("/nonexistent/file.csv")

    def test_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="directory"):
            load_dataset(str(tmp_path))

    def test_corrupt_binary_libsvm(self, tmp_path):
        path = str(tmp_path / "corrupt.libsvm")
        with open(path, "wb") as fh:
            fh.write(bytes([0xFF, 0xFE, 0x00, 0x9D]) * 16)
        with pytest.raises(DatasetError, match="corrupt.libsvm"):
            load_dataset(path)

    def test_corrupt_binary_csv(self, tmp_path):
        path = str(tmp_path / "corrupt.csv")
        with open(path, "wb") as fh:
            fh.write(bytes([0xFF, 0xFE, 0x00, 0x9D]) * 16)
        with pytest.raises(DatasetError, match="corrupt.csv"):
            load_dataset(path)
