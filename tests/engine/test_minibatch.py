"""Online mini-batch ``partial_fit``: cold-start bit-exactness, streaming
updates, early stop, warm starts, the two input modes, and the
``tile_rows`` -> ``chunk_rows`` alias migration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    NotFittedError,
    PopcornKernelKMeans,
    available_estimators,
    clone,
    make_estimator,
)
from repro.data import make_blobs
from repro.engine import EWA_ALPHA, OnlineState, partial_fit_step
from repro.engine.reduction import resolve_rows_alias
from repro.errors import ConfigError, ShapeError
from repro.estimators import estimator_capabilities, estimator_config
from repro.kernels import kernel_matrix
from repro.params import check_is_fitted


def _data(n=48, d=5, k=4, rng=0):
    return make_blobs(n, d, k, rng=rng)[0].astype(np.float64)


# ----------------------------------------------------------------------
# the acceptance property: one full-data partial_fit call is one
# full-fit iteration, bit for bit
# ----------------------------------------------------------------------


class TestColdStartBitExact:
    @given(
        name=st.sampled_from(["popcorn", "weighted"]),
        dtype=st.sampled_from([np.float32, np.float64]),
        weighted=st.booleans(),
        seed=st.integers(0, 7),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_data_partial_fit_is_one_fit_iteration(
        self, name, dtype, weighted, seed
    ):
        x = _data(rng=seed)
        w = None
        if weighted:
            w = np.random.default_rng(seed).uniform(0.5, 2.0, x.shape[0])

        kw = dict(n_clusters=4, backend="host", seed=seed)
        if name == "popcorn":  # the weighted estimator is float64-only
            kw["dtype"] = dtype
        full = make_estimator(name, max_iter=1, **kw).fit(x, sample_weight=w)
        online = make_estimator(name, **kw).partial_fit(x, sample_weight=w)

        assert np.array_equal(online.labels_, full.labels_)
        assert online.objective_ == full.objective_
        np.testing.assert_array_equal(online._c_norms, full._c_norms)
        np.testing.assert_array_equal(
            online._support_v.values, full._support_v.values
        )
        np.testing.assert_array_equal(
            online._support_v.colinds, full._support_v.colinds
        )
        assert online.n_iter_ == 1
        assert online.n_batches_seen_ == 1
        assert not online.converged_

    def test_precomputed_cold_start_matches_fit(self):
        x = _data()
        est = PopcornKernelKMeans(4, backend="host", dtype=np.float64, seed=3)
        km = kernel_matrix(x, est.kernel)
        full = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=3, max_iter=1
        ).fit(kernel_matrix=km)
        online = est.partial_fit(kernel_matrix=km)
        assert np.array_equal(online.labels_, full.labels_)
        assert online.objective_ == full.objective_
        assert online.gram_method_ == "precomputed"

    def test_chunked_estimator_cold_start_matches_chunked_fit(self):
        # chunk_rows forces the tiled gram policy (GEMM) identically on
        # the fit and cold-start paths
        x = _data()
        full = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=1, max_iter=1, chunk_rows=11
        ).fit(x)
        online = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=1, chunk_rows=11
        ).partial_fit(x)
        assert np.array_equal(online.labels_, full.labels_)
        assert online.objective_ == full.objective_
        assert online.gram_method_ == full.gram_method_ == "gemm"

    def test_too_many_clusters_for_first_batch(self):
        with pytest.raises(ConfigError, match="cold-start"):
            PopcornKernelKMeans(10, backend="host").partial_fit(_data(n=6))


# ----------------------------------------------------------------------
# streaming updates
# ----------------------------------------------------------------------


class TestStreaming:
    def test_support_grows_and_predict_works(self):
        x = _data(n=60)
        est = PopcornKernelKMeans(4, backend="host", dtype=np.float64, seed=0)
        est.partial_fit(x[:30])
        assert est._online.n_support == 30
        for lo in range(30, 60, 10):
            est.partial_fit(x[lo : lo + 10])
        assert est._online.n_support == 60
        assert est.n_batches_seen_ == 4
        assert est.labels_.shape == (10,)  # labels_ covers the last batch
        got = est.predict(x)
        assert got.shape == (60,)
        assert set(np.unique(got)) <= set(range(4))

    def test_batch_size_splits_one_call(self):
        x = _data(n=50)
        est = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=0, batch_size=20
        )
        est.partial_fit(x)
        # 3 batches: cold start on rows 0..20, then 20..40, 40..50
        assert est.n_batches_seen_ == 3
        assert est.labels_.shape == (50,)  # concatenated per-batch labels
        assert est._online.n_support == 50

    def test_counts_track_sample_weight(self):
        x = _data(n=40)
        w = np.full(40, 2.5)
        # reassignment re-seeds a starved cluster with duplicated batch
        # mass, so conservation only holds with it disabled
        est = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=0, reassignment_ratio=0.0
        )
        est.partial_fit(x[:25], sample_weight=w[:25])
        est.partial_fit(x[25:], sample_weight=w[25:])
        assert est._online.counts.sum() == pytest.approx(w.sum())

    def test_repeated_passes_reduce_objective(self):
        x = _data(n=80, rng=2)
        est = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=2, batch_size=20,
            max_no_improvement=None,
        )
        est.partial_fit(x)
        first = est.objective_history_[0]
        for _ in range(6):
            for lo in range(0, 80, 20):
                est.partial_fit(x[lo : lo + 20])
        # per-batch inertia of a 20-row batch vs the 20-row slices of the
        # cold batch: compare like for like via the smoothed average
        assert est._online.ewa_inertia is not None
        assert est.objective_ < first

    def test_reassignment_resets_starved_clusters(self):
        x = _data(n=40, k=2, rng=5)
        est = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=5,
            reassignment_ratio=0.9,  # aggressively reset light clusters
        )
        est.partial_fit(x[:20])
        before = est._online.counts.copy()
        est.partial_fit(x[20:])
        after = est._online.counts
        assert after.shape == before.shape
        assert (after > 0).all()  # reset clusters re-enter with batch mass
        # a reset cluster holds exactly one support column
        lens = [m.shape[0] for m in est._online.members]
        assert min(lens) >= 1


# ----------------------------------------------------------------------
# early stop on smoothed inertia
# ----------------------------------------------------------------------


class TestEarlyStop:
    def test_converges_after_patience_stale_batches(self):
        # tol is the relative-improvement threshold: with tol=0.5 the
        # small per-batch gains of a repeated batch count as stale
        x = _data(n=30)
        est = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, seed=0,
            max_no_improvement=3, tol=0.5,
        )
        est.partial_fit(x)
        batch = x[:10]
        seen = []
        for _ in range(12):
            est.partial_fit(batch)
            seen.append(est.converged_)
            if est.converged_:
                break
        assert est.converged_
        assert "online" in est.convergence_reason_
        assert est._online.no_improvement >= 3
        assert len(seen) < 12  # stopped well before the cap

    def test_partial_fit_never_refuses_updates(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, seed=0,
            max_no_improvement=1, tol=0.5,
        )
        est.partial_fit(x)
        for _ in range(8):
            est.partial_fit(x[:10])
        assert est.converged_
        before = est.n_batches_seen_
        est.partial_fit(x[10:20])  # still updates after the flag is set
        assert est.n_batches_seen_ == before + 1

    def test_ewa_alpha_bookkeeping(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, seed=0, max_no_improvement=None
        )
        est.partial_fit(x)
        est.partial_fit(x[:10])
        first = est._online.ewa_inertia
        inertia2 = None
        est.partial_fit(x[10:20])
        inertia2 = est.objective_ / 10.0  # unit weights: per-sample
        want = first * (1.0 - EWA_ALPHA) + inertia2 * EWA_ALPHA
        assert est._online.ewa_inertia == pytest.approx(want)


# ----------------------------------------------------------------------
# warm start + input modes
# ----------------------------------------------------------------------


class TestWarmStartAndModes:
    def test_warm_start_from_full_fit(self):
        x = _data(n=50)
        est = PopcornKernelKMeans(
            4, backend="host", dtype=np.float64, seed=0, max_iter=8
        ).fit(x[:40])
        assert not hasattr(est, "n_batches_seen_")
        est.partial_fit(x[40:])
        assert est.n_batches_seen_ == 1
        assert est._online.n_support == 50
        assert est.predict(x).shape == (50,)

    def test_precomputed_mode_streams_fixed_dataset(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        km = kernel_matrix(x, est.kernel)
        est.partial_fit(kernel_matrix=km)
        est.set_params(batch_size=10)
        est.partial_fit(kernel_matrix=km)  # second pass streams 3 batches
        assert est.n_batches_seen_ == 4
        assert est._online.n_support == 30  # support never grows

    def test_precomputed_cold_start_needs_full_matrix(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, seed=0, batch_size=10
        )
        km = kernel_matrix(x, est.kernel)
        with pytest.raises(ConfigError, match="cold start"):
            est.partial_fit(kernel_matrix=km)

    def test_mode_mixing_rejected_both_ways(self):
        x = _data(n=24)
        pts = PopcornKernelKMeans(3, backend="host", seed=0).partial_fit(x)
        km = kernel_matrix(
            np.asarray(x, dtype=np.float32), pts.kernel
        )
        with pytest.raises(ConfigError, match="points mode"):
            pts.partial_fit(kernel_matrix=np.asarray(km, dtype=np.float32))

        pre = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        pre.partial_fit(kernel_matrix=kernel_matrix(x, pre.kernel))
        with pytest.raises(ConfigError, match="precomputed mode"):
            pre.partial_fit(x)

    def test_precomputed_shape_is_pinned(self):
        x = _data(n=24)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        est.partial_fit(kernel_matrix=kernel_matrix(x, est.kernel))
        small = kernel_matrix(x[:10], est.kernel)
        with pytest.raises(ShapeError, match="fixed dataset"):
            est.partial_fit(kernel_matrix=small)


# ----------------------------------------------------------------------
# input validation
# ----------------------------------------------------------------------


class TestValidation:
    def test_both_inputs_rejected(self):
        x = _data(n=12)
        est = PopcornKernelKMeans(2, backend="host")
        with pytest.raises(ConfigError, match="not both"):
            est.partial_fit(x, kernel_matrix=np.eye(12))

    def test_neither_input_rejected(self):
        with pytest.raises(ShapeError, match="either"):
            PopcornKernelKMeans(2, backend="host").partial_fit()

    def test_sample_weight_length_checked(self):
        x = _data(n=12)
        with pytest.raises(ShapeError, match="sample_weight"):
            PopcornKernelKMeans(2, backend="host").partial_fit(
                x, sample_weight=np.ones(5)
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(ShapeError, match="at least one sample"):
            PopcornKernelKMeans(2, backend="host").partial_fit(
                np.empty((0, 3))
            )

    def test_partial_fit_step_is_the_engine_entry(self):
        x = _data(n=20)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        out = partial_fit_step(est, x)
        assert out is est
        assert isinstance(est._online, OnlineState)


# ----------------------------------------------------------------------
# fitted state, clone, capabilities
# ----------------------------------------------------------------------


class TestFittedStateAndClone:
    def test_check_is_fitted_after_partial_fit_only(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        with pytest.raises(NotFittedError):
            check_is_fitted(est)
        est.partial_fit(x)
        check_is_fitted(est)
        check_is_fitted(est, ("labels_", "n_iter_", "n_batches_seen_"))

    def test_clone_drops_online_counters(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(
            3, backend="host", dtype=np.float64, seed=0, batch_size=10
        ).partial_fit(x)
        fresh = clone(est)
        assert fresh.batch_size == 10  # params survive
        assert getattr(fresh, "_online", None) is None
        assert not hasattr(fresh, "n_batches_seen_")
        with pytest.raises(NotFittedError):
            fresh.predict(x)

    def test_online_counters_snapshot(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        est.partial_fit(x)
        est.partial_fit(x[:10])
        c = est._online.counters()
        assert set(c) == {
            "ewa_inertia", "ewa_inertia_min", "no_improvement", "precomputed",
        }
        assert c["precomputed"] is False


class TestCapabilities:
    def test_tag_queries(self):
        assert set(available_estimators(tag="supports_partial_fit")) == {
            "popcorn", "weighted",
        }
        assert "distributed" in available_estimators(tag="supports_sample_weight")
        assert list(available_estimators(tag="requires_precomputed_kernel")) == []

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigError, match="capability"):
            available_estimators(tag="supports_time_travel")

    def test_estimator_config_lists_capabilities(self):
        est = PopcornKernelKMeans(2)
        cfg = estimator_config(est)
        assert cfg["capabilities"] == [
            "supports_partial_fit", "supports_sample_weight",
        ]
        assert estimator_capabilities("lloyd") == ()

    @pytest.mark.parametrize(
        "name",
        sorted(set(available_estimators()) - {"popcorn", "weighted"}),
    )
    def test_unsupporting_estimators_raise_config_error(self, name):
        est = make_estimator(name, n_clusters=2)
        with pytest.raises(ConfigError, match="supports_partial_fit") as exc:
            est.partial_fit(np.zeros((4, 2)))
        # the message names the estimators that do support it
        assert "popcorn" in str(exc.value)


# ----------------------------------------------------------------------
# the tile_rows -> chunk_rows migration
# ----------------------------------------------------------------------


class TestTileRowsAlias:
    def test_ctor_alias_warns_and_remaps(self):
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            est = PopcornKernelKMeans(2, tile_rows=16)
        assert est.chunk_rows == 16
        assert est.get_params()["chunk_rows"] == 16
        assert "tile_rows" not in est.get_params()

    def test_alias_at_default_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            est = PopcornKernelKMeans(2, tile_rows=None)
        assert est.chunk_rows is None

    def test_conflicting_spellings_rejected(self):
        with pytest.raises(ConfigError, match="deprecated alias"):
            PopcornKernelKMeans(2, chunk_rows=8, tile_rows=16)

    def test_matching_spellings_tolerated(self):
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            est = PopcornKernelKMeans(2, chunk_rows=8, tile_rows=8)
        assert est.chunk_rows == 8

    def test_set_params_alias(self):
        est = PopcornKernelKMeans(2)
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            est.set_params(tile_rows=12)
        assert est.chunk_rows == 12

    def test_predict_kwarg_alias(self):
        x = _data(n=30)
        est = PopcornKernelKMeans(3, backend="host", dtype=np.float64, seed=0)
        est.partial_fit(x)
        want = est.predict(x)
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            got = est.predict(x, tile_rows=7)
        assert np.array_equal(got, want)

    def test_resolve_rows_alias_conflict(self):
        with pytest.raises(ConfigError, match="chunk_rows"):
            resolve_rows_alias(8, 16, owner="test")
        assert resolve_rows_alias(8, None, owner="test") == 8
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            assert resolve_rows_alias(None, 16, owner="test") == 16
