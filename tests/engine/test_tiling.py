"""Tests for the row-tiled distance pipeline (repro.engine.tiling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans
from repro.core.distances import popcorn_distances_host
from repro.core.weighted import weighted_distances_host
from repro.engine import row_tiles, tiled_popcorn_distances_host, validate_tile_rows
from repro.errors import ConfigError, ShapeError
from repro.kernels import PolynomialKernel, kernel_matrix


class TestRowTiles:
    def test_none_is_monolithic(self):
        assert row_tiles(17, None) == [(0, 17)]

    def test_tile_larger_than_n_is_monolithic(self):
        assert row_tiles(10, 64) == [(0, 10)]

    def test_exact_divisor(self):
        assert row_tiles(12, 4) == [(0, 4), (4, 8), (8, 12)]

    def test_non_divisor_short_last_tile(self):
        assert row_tiles(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_tile_of_one(self):
        tiles = row_tiles(5, 1)
        assert tiles == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_tiles_cover_range_exactly(self):
        for n in (1, 7, 31):
            for r in (1, 2, 5, 30, 31, 100):
                tiles = row_tiles(n, r)
                assert tiles[0][0] == 0 and tiles[-1][1] == n
                for (a, b), (c, _) in zip(tiles, tiles[1:]):
                    assert b == c

    def test_invalid_tile_rows(self):
        with pytest.raises(ConfigError):
            validate_tile_rows(0)
        with pytest.raises(ConfigError):
            row_tiles(10, -3)

    def test_invalid_n(self):
        with pytest.raises(ShapeError):
            row_tiles(0, 4)


class TestTiledDistancesBitExact:
    """The tentpole property: tiling never changes a single bit."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        k=st.integers(min_value=1, max_value=6),
        tile=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_monolithic_bit_for_bit_float64(self, n, k, tile, seed):
        rng = np.random.default_rng(seed)
        k = min(k, n)
        x = rng.standard_normal((n, 3))
        km = kernel_matrix(x, PolynomialKernel())  # float64, PSD, symmetric
        labels = random_labels(n, k, rng)
        mono, _ = popcorn_distances_host(km, labels, k)
        tiled, _ = tiled_popcorn_distances_host(km, labels, k, tile_rows=tile)
        assert np.array_equal(mono, tiled)  # bit-for-bit, not allclose

    @settings(max_examples=30, deadline=None)
    @given(
        tile=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_float32_is_also_bit_exact(self, tile, seed):
        rng = np.random.default_rng(seed)
        n, k = 33, 4
        x = rng.standard_normal((n, 4)).astype(np.float32)
        km = (x @ x.T).astype(np.float32)
        labels = random_labels(n, k, rng)
        mono, _ = popcorn_distances_host(km, labels, k)
        tiled, _ = tiled_popcorn_distances_host(km, labels, k, tile_rows=tile)
        assert np.array_equal(mono, tiled)

    @settings(max_examples=30, deadline=None)
    @given(
        tile=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_weighted_tiled_matches_weighted_host(self, tile, seed):
        rng = np.random.default_rng(seed)
        n, k = 29, 3
        x = rng.standard_normal((n, 3))
        km = kernel_matrix(x, PolynomialKernel())
        labels = random_labels(n, k, rng)
        w = rng.uniform(0.1, 3.0, n)
        mono = weighted_distances_host(km, labels, k, w)
        tiled, _ = tiled_popcorn_distances_host(
            km, labels, k, tile_rows=tile, weights=w
        )
        assert np.array_equal(mono, tiled)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ShapeError):
            tiled_popcorn_distances_host(
                rng.standard_normal((4, 5)), np.zeros(4, dtype=np.int32), 2, tile_rows=2
            )


class TestTiledEstimator:
    """PopcornKernelKMeans(tile_rows=r) is label-identical to monolithic."""

    @pytest.mark.parametrize("tile", [1, 7, 32, 90, 1000])
    def test_labels_identical_for_any_tile(self, blobs, tile):
        x, _, k = blobs  # n = 90; 7 and 1000 exercise non-divisor / oversize
        mono = PopcornKernelKMeans(k, seed=0, max_iter=8).fit(x)
        tiled = PopcornKernelKMeans(k, seed=0, max_iter=8, tile_rows=tile).fit(x)
        assert np.array_equal(mono.labels_, tiled.labels_)
        assert tiled.objective_ == pytest.approx(mono.objective_)

    def test_tiled_precomputed_kernel(self, rng):
        n, k = 40, 3
        x = rng.standard_normal((n, 4))
        km = kernel_matrix(x, PolynomialKernel())
        init = random_labels(n, k, rng)
        mono = PopcornKernelKMeans(k, dtype=np.float64).fit(
            kernel_matrix=km, init_labels=init
        )
        tiled = PopcornKernelKMeans(k, dtype=np.float64, tile_rows=13).fit(
            kernel_matrix=km, init_labels=init
        )
        assert np.array_equal(mono.labels_, tiled.labels_)

    def test_tiled_gaussian_from_points(self, circles):
        x, _, k = circles
        mono = PopcornKernelKMeans(k, kernel="gaussian", seed=1, max_iter=10).fit(x)
        tiled = PopcornKernelKMeans(
            k, kernel="gaussian", seed=1, max_iter=10, tile_rows=50
        ).fit(x)
        assert np.array_equal(mono.labels_, tiled.labels_)

    def test_tiled_charges_streaming_transfers(self, blobs):
        x, _, k = blobs
        mono = PopcornKernelKMeans(k, seed=0, max_iter=4, check_convergence=False).fit(x)
        tiled = PopcornKernelKMeans(
            k, seed=0, max_iter=4, check_convergence=False, tile_rows=30
        ).fit(x)
        # per-iteration H2D re-streaming of K must show up in the model
        assert tiled.timings_["transfer"] > mono.timings_["transfer"]
        assert tiled.device_.profiler.count_of("cusparse.spmm_tile") == 3 * 4

    def test_tiled_never_allocates_k_on_device(self, blobs):
        x, _, k = blobs  # n=90, fp32: K would be 32.4 KB
        tiled = PopcornKernelKMeans(k, seed=0, max_iter=3, tile_rows=10).fit(x)
        peak = tiled.device_.peak_allocated_bytes
        assert peak < 4 * 90 * 90  # strictly below a resident K

    def test_syrk_with_tiling_rejected(self, blobs):
        x, _, k = blobs
        with pytest.raises(ConfigError, match="syrk"):
            PopcornKernelKMeans(k, gram_method="syrk", tile_rows=16).fit(x)

    def test_bad_tile_rows_rejected(self):
        # the deprecated alias remaps before validation, so the error
        # names the canonical knob
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            with pytest.raises(ConfigError, match="chunk_rows"):
                PopcornKernelKMeans(2, tile_rows=0)

    def test_model_matches_execution_launch_for_launch(self, rng):
        """The tiled analytical model mirrors the tiled engine exactly."""
        from repro.modeling import model_popcorn_tiled

        n, d, k, iters, tile = 48, 6, 3, 4, 13
        x = rng.standard_normal((n, d)).astype(np.float32)
        init = random_labels(n, k, rng)
        est = PopcornKernelKMeans(
            k, max_iter=iters, check_convergence=False, tile_rows=tile
        ).fit(x, init_labels=init)
        modeled = model_popcorn_tiled(n, d, k, tile_rows=tile, iters=iters)
        skip = ("cuda.memcpy_h2d", "cuda.memcpy_d2h")
        got = [l for l in est.device_.profiler.launches if l.name not in skip]
        want = [l for l in modeled.profiler.launches if l.name not in skip]
        assert [l.name for l in got] == [l.name for l in want]
        for a, b in zip(got, want):
            assert a.flops == pytest.approx(b.flops), a.name
            assert a.bytes == pytest.approx(b.bytes), a.name
            assert a.time_s == pytest.approx(b.time_s), a.name
