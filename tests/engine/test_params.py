"""The introspectable-params protocol: get/set/clone/repr across the family.

Headline properties:

* ``clone(est)`` then ``fit`` is **bit-identical** to a fresh fit of the
  same configuration (the guarantee grid search rests on);
* ``set_params`` round-trips ``get_params`` for every registered
  estimator (and across backends);
* unknown parameter names raise :class:`~repro.errors.ConfigError`
  naming the valid set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    NotFittedError,
    check_is_fitted,
    clone,
    make_estimator,
    available_estimators,
    get_estimator_class,
)
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.kernels import GaussianKernel, PolynomialKernel, kernel_by_name

#: estimators whose uniform fit accepts a plain point matrix
POINT_FITTABLE = (
    "popcorn",
    "baseline",
    "onthefly",
    "prmlt",
    "lloyd",
    "elkan",
    "nystrom",
    "distributed",
    "spectral",
    "weighted",
)

#: backend values every estimator accepts (parse_shard_backend and the
#: engine registry both understand these)
BACKENDS = ("auto", "host", "sharded:2")


def _points(n=50, d=3, k=3, seed=1):
    x, _ = make_blobs(n, d, k, rng=seed)
    return x.astype(np.float64)


class TestGetSetRoundTrip:
    @pytest.mark.parametrize("name", sorted(available_estimators()))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_set_params_round_trips_get_params(self, name, backend):
        est = make_estimator(name, n_clusters=3, backend=backend, seed=7)
        params = est.get_params(deep=False)
        other = make_estimator(name, n_clusters=2)
        other.set_params(**params)
        assert other.get_params(deep=False).keys() == params.keys()
        for key, value in other.get_params(deep=False).items():
            assert repr(value) == repr(params[key]), key

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_unknown_param_names_valid_set(self, name):
        est = make_estimator(name, n_clusters=2)
        with pytest.raises(ConfigError) as err:
            est.set_params(definitely_not_a_param=1)
        message = str(err.value)
        assert "definitely_not_a_param" in message
        # the error names the valid set
        for param in est.param_names():
            assert param in message

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_make_estimator_rejects_unknown_params(self, name):
        with pytest.raises(ConfigError, match="valid parameters"):
            make_estimator(name, n_clusters=2, definitely_not_a_param=1)

    def test_nested_kernel_access(self):
        est = make_estimator("popcorn", n_clusters=2, kernel="gaussian")
        assert est.get_params()["kernel__gamma"] == 1.0
        est.set_params(kernel__gamma=0.25, kernel__sigma2=2.0)
        assert est.kernel.gamma == 0.25
        assert est.kernel.sigma2 == 2.0
        with pytest.raises(ConfigError, match="valid parameters"):
            est.set_params(kernel__bogus=1)

    def test_set_params_revalidates(self):
        est = make_estimator("popcorn", n_clusters=2)
        with pytest.raises(ConfigError):
            est.set_params(n_clusters=0)
        with pytest.raises(ConfigError):
            est.set_params(init="bogus")
        with pytest.raises(ConfigError):
            est.set_params(backend="fpga")
        with pytest.raises(ConfigError):
            est.set_params(kernel__gamma=-1.0)


class TestCloneFitBitIdentical:
    @pytest.mark.parametrize("name", sorted(POINT_FITTABLE))
    def test_clone_then_fit_matches_fresh_fit(self, name):
        x = _points()
        est = make_estimator(name, n_clusters=3, seed=0)
        c = clone(est)
        a = est.fit(x).labels_
        b = c.fit(x).labels_
        assert np.array_equal(a, b)

    @settings(deadline=None, max_examples=10)
    @given(
        seed=st.integers(0, 2**16),
        gamma=st.floats(0.2, 4.0),
        k=st.integers(2, 4),
    )
    def test_clone_property_popcorn(self, seed, gamma, k):
        """clone -> fit is bit-identical to a fresh fit (property)."""
        x = _points(seed=2)
        est = make_estimator(
            "popcorn",
            n_clusters=k,
            kernel=GaussianKernel(gamma=gamma),
            dtype=np.float64,
            max_iter=6,
            seed=seed,
        )
        fresh = make_estimator(
            "popcorn",
            n_clusters=k,
            kernel=GaussianKernel(gamma=gamma),
            dtype=np.float64,
            max_iter=6,
            seed=seed,
        )
        assert np.array_equal(clone(est).fit(x).labels_, fresh.fit(x).labels_)
        # the original was never mutated by cloning
        assert not hasattr(est, "labels_")

    def test_clone_deep_copies_kernel(self):
        est = make_estimator("popcorn", n_clusters=2, kernel="polynomial")
        c = clone(est)
        c.set_params(kernel__degree=5)
        assert est.kernel.degree == 2

    def test_clone_of_fitted_is_unfitted(self):
        x = _points()
        est = make_estimator("lloyd", n_clusters=3, seed=0).fit(x)
        c = clone(est)
        with pytest.raises(NotFittedError):
            c.predict(x)

    def test_clone_rejects_non_protocol_objects(self):
        with pytest.raises(ConfigError, match="clone"):
            clone(object())


class TestReprAndFittedGuards:
    def test_repr_shows_only_non_default_params(self):
        assert repr(make_estimator("popcorn", n_clusters=3)) == (
            "PopcornKernelKMeans(n_clusters=3)"
        )
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            text = repr(
                make_estimator("popcorn", n_clusters=3, backend="host", tile_rows=32)
            )
        # the deprecated alias resolves to the canonical knob
        assert "backend='host'" in text and "chunk_rows=32" in text
        assert "tile_rows" not in text and "max_iter" not in text

    def test_repr_round_trips_kernels(self):
        k = kernel_by_name("polynomial", degree=4)
        assert repr(k) == "PolynomialKernel(degree=4)"
        assert repr(PolynomialKernel()) == "PolynomialKernel()"

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_predict_before_fit_raises_not_fitted(self, name):
        est = make_estimator(name, n_clusters=2)
        with pytest.raises(NotFittedError, match="not fitted"):
            est.predict(np.zeros((2, 3)))
        with pytest.raises(NotFittedError):
            check_is_fitted(est)

    def test_not_fitted_error_is_config_and_attribute_error(self):
        est = make_estimator("popcorn", n_clusters=2)
        with pytest.raises(ConfigError):
            est.predict(np.zeros((2, 3)))
        with pytest.raises(AttributeError):
            est.predict(np.zeros((2, 3)))


class TestUniformFitContract:
    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_fit_signature_is_uniform(self, name):
        import inspect

        sig = inspect.signature(get_estimator_class(name).fit)
        names = list(sig.parameters)
        assert names == [
            "self",
            "x",
            "kernel_matrix",
            "init_labels",
            "sample_weight",
        ], name

    def test_unsupported_inputs_raise_with_reason(self):
        x = _points()
        with pytest.raises(ConfigError, match="does not accept kernel_matrix"):
            make_estimator("lloyd", n_clusters=2).fit(x, kernel_matrix=np.eye(50))
        with pytest.raises(ConfigError, match="does not accept sample_weight"):
            make_estimator("elkan", n_clusters=2).fit(x, sample_weight=np.ones(50))
        with pytest.raises(ConfigError, match="does not accept kernel_matrix"):
            make_estimator("onthefly", n_clusters=2).fit(x, kernel_matrix=np.eye(50))
        with pytest.raises(ConfigError, match="does not accept init_labels"):
            make_estimator("nystrom", n_clusters=2).fit(
                x, init_labels=np.zeros(50, dtype=np.int32)
            )

    def test_fit_predict_shared_forwarding(self):
        x = _points()
        for name in ("popcorn", "lloyd", "onthefly", "prmlt", "elkan"):
            est = make_estimator(name, n_clusters=3, seed=0)
            labels = est.fit_predict(x)
            assert np.array_equal(labels, est.labels_)
        # and fit_predict is one shared implementation, not local overrides
        import repro.engine.base as base

        for name in available_estimators():
            cls = get_estimator_class(name)
            assert cls.fit_predict is base.OutOfSamplePredictor.fit_predict, name

    def test_popcorn_sample_weight_matches_weighted_estimator(self):
        from repro import PopcornKernelKMeans, WeightedPopcornKernelKMeans
        from repro.baselines import random_labels
        from repro.kernels import kernel_matrix

        x = _points()
        km = kernel_matrix(x, PolynomialKernel())
        w = np.random.default_rng(0).uniform(0.5, 2.0, x.shape[0])
        init = random_labels(x.shape[0], 3, np.random.default_rng(1))
        a = PopcornKernelKMeans(3, dtype=np.float64, backend="host", max_iter=8).fit(
            kernel_matrix=km, sample_weight=w, init_labels=init
        )
        b = WeightedPopcornKernelKMeans(3, max_iter=8).fit(
            kernel_matrix=km, sample_weight=w, init_labels=init
        )
        assert np.array_equal(a.labels_, b.labels_)

    def test_weighted_square_symmetric_x_rejected_as_ambiguous(self):
        """A legacy fit(km) positional call must fail loudly, not silently
        cluster the kernel matrix as points."""
        from repro.kernels import kernel_matrix

        x = _points()
        km = kernel_matrix(x, PolynomialKernel())
        with pytest.raises(ConfigError, match="kernel_matrix"):
            make_estimator("weighted", n_clusters=3).fit(km)

    def test_weighted_accepts_points_through_kernel(self):
        x = _points()
        est = make_estimator(
            "weighted", n_clusters=3, kernel="polynomial", seed=0
        ).fit(x)
        # fitted on points: held-out predict works without a cross kernel
        assert est.predict(x[:7]).shape == (7,)
