"""Every estimator in the family rides the shared engine base class."""

import numpy as np
import pytest

from repro import (
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    NystromKernelKMeans,
    PopcornKernelKMeans,
    SpectralKernelKMeans,
    WeightedPopcornKernelKMeans,
)
from repro.data import make_moons
from repro.engine import BaseKernelKMeans
from repro.errors import ConfigError

ALL_SIX = (
    PopcornKernelKMeans,
    WeightedPopcornKernelKMeans,
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    NystromKernelKMeans,
    SpectralKernelKMeans,
)


class TestFamilyContract:
    @pytest.mark.parametrize("cls", ALL_SIX)
    def test_inherits_base(self, cls):
        assert issubclass(cls, BaseKernelKMeans)

    @pytest.mark.parametrize("cls", ALL_SIX)
    def test_accepts_backend_parameter(self, cls):
        est = cls(2, backend="auto")
        assert est.backend == "auto"
        assert cls(2, backend="host").backend == "host"

    @pytest.mark.parametrize("cls", ALL_SIX)
    def test_rejects_bogus_backend(self, cls):
        with pytest.raises(ConfigError, match="backend"):
            cls(2, backend="fpga")

    @pytest.mark.parametrize("cls", ALL_SIX)
    def test_shared_validation(self, cls):
        with pytest.raises(ConfigError):
            cls(0)

    @pytest.mark.parametrize(
        "cls", (DistributedPopcornKernelKMeans, NystromKernelKMeans)
    )
    def test_host_only_estimators_reject_device_backend(self, cls):
        with pytest.raises(ConfigError, match="backend"):
            cls(2, backend="device")


class TestInheritedBehaviour:
    def test_fit_predict_inherited(self, blobs):
        x, _, k = blobs
        for cls in (PopcornKernelKMeans, BaselineCUDAKernelKMeans):
            m = cls(k, seed=0, max_iter=5)
            assert np.array_equal(m.fit_predict(x), m.labels_)

    def test_backend_attribute_after_fit(self, blobs):
        x, _, k = blobs
        assert PopcornKernelKMeans(k, seed=0, max_iter=3).fit(x).backend_ == "device"
        assert NystromKernelKMeans(k, seed=0).fit(x).backend_ == "host"
        assert (
            DistributedPopcornKernelKMeans(k, n_devices=2, seed=0, max_iter=3)
            .fit(x)
            .backend_
            == "sharded:2"
        )

    def test_distributed_reports_timings(self, blobs):
        x, _, k = blobs
        m = DistributedPopcornKernelKMeans(
            k, n_devices=3, seed=0, max_iter=3, check_convergence=False
        ).fit(x)
        assert m.timings_["distances"] > 0
        assert m.timings_["kernel_matrix"] > 0

    def test_weighted_reports_engine_attributes(self, small_kernel_matrix):
        km, labels, k = small_kernel_matrix
        m = WeightedPopcornKernelKMeans(k, seed=0).fit(kernel_matrix=km)
        assert m.backend_ == "host"
        assert m.convergence_reason_ in (
            "", "assignments stable", "objective improvement below tol"
        )
        assert "distances" in m.timings_

    def test_spectral_forwards_backend(self):
        x, y = make_moons(160, rng=5)
        host = SpectralKernelKMeans(2, seed=0, backend="host", power_iters=300).fit(x)
        dev = SpectralKernelKMeans(2, seed=0, backend="device", power_iters=300).fit(x)
        assert np.array_equal(host.labels_, dev.labels_)
        assert dev.backend_ == "device"
