"""The chunked pairwise-reduction engine: bit-exactness property suite.

The contract under test (repro.engine.reduction): for every dtype, chunk
shape (including non-dividing and degenerate 1x1 schedules), thread
count, and weighted/unweighted selection matrix, the fused argmin
produces labels and min-distances **bit-for-bit identical** to the
legacy materialise-then-argmin pipeline — and argmin-equal to the dense
float64 gold standard (`distance_matrix_reference`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_labels
from repro.core import argmin_assign, distance_matrix_reference
from repro.core.distances import popcorn_distances_host
from repro.data import make_blobs
from repro.engine.reduction import (
    DEFAULT_CHUNK_COLS,
    DEFAULT_CHUNK_ROWS,
    WorkStealingPool,
    chunk_ranges,
    csr_row_slice,
    fused_popcorn_argmin,
    validate_chunk_size,
    validate_n_threads,
)
from repro.engine.tiling import tiled_popcorn_distances_host
from repro.errors import ConfigError, ShapeError
from repro.estimators import available_estimators, filter_params, make_estimator
from repro.sparse import selection_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _kernel_matrix(n, rng, dtype=np.float64):
    x = rng.standard_normal((n, 6))
    return np.ascontiguousarray((x @ x.T).astype(dtype))


# ----------------------------------------------------------------------
# schedule + validator plumbing
# ----------------------------------------------------------------------


class TestChunkRanges:
    def test_non_dividing(self):
        assert chunk_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_degenerate_one(self):
        assert chunk_ranges(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_none_is_single_chunk(self):
        assert chunk_ranges(7, None) == [(0, 7)]

    def test_oversized_is_single_chunk(self):
        assert chunk_ranges(7, 1000) == [(0, 7)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_negative_raises(self):
        with pytest.raises(ShapeError):
            chunk_ranges(-1, 4)


class TestValidators:
    @pytest.mark.parametrize("value", [None, 1, 7, DEFAULT_CHUNK_ROWS])
    def test_chunk_size_accepts(self, value):
        assert validate_chunk_size(value) == value

    @pytest.mark.parametrize("value", [0, -3, 2.5, "8"])
    def test_chunk_size_rejects(self, value):
        with pytest.raises(ConfigError):
            validate_chunk_size(value)

    @pytest.mark.parametrize("value", [None, 1, 8])
    def test_n_threads_accepts(self, value):
        assert validate_n_threads(value) == value

    @pytest.mark.parametrize("value", [0, -1, 1.5])
    def test_n_threads_rejects(self, value):
        with pytest.raises(ConfigError):
            validate_n_threads(value)


class TestCsrRowSlice:
    def test_matches_dense_slice(self, rng):
        lab = random_labels(20, 5, rng)
        v = selection_matrix(lab, 5)
        dense = v.to_dense()
        for r0, r1 in [(0, 5), (2, 4), (0, 0), (4, 5)]:
            part = csr_row_slice(v, r0, r1)
            assert part.shape == (r1 - r0, 20)
            np.testing.assert_array_equal(part.to_dense(), dense[r0:r1])


class TestWorkStealingPool:
    def test_runs_every_task(self):
        out = []
        WorkStealingPool(3).run([lambda i=i: out.append(i) for i in range(20)])
        assert sorted(out) == list(range(20))

    def test_single_thread_inline(self):
        out = []
        WorkStealingPool(1).run([lambda i=i: out.append(i) for i in range(5)])
        assert out == list(range(5))

    def test_exception_propagates(self):
        def boom():
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            WorkStealingPool(4).run([boom] * 3)

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ConfigError):
            WorkStealingPool(0)


# ----------------------------------------------------------------------
# the bit-exactness property
# ----------------------------------------------------------------------

CHUNK_GRID = [
    (None, None),
    (1, 1),  # degenerate: one entry per panel
    (7, 3),  # non-dividing both axes
    (16, 1),
    (1000, 1000),  # oversized: one chunk
]


class TestFusedBitExact:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
    @pytest.mark.parametrize("chunk_rows,chunk_cols", CHUNK_GRID)
    @pytest.mark.parametrize("n_threads", [1, 2, 8])
    def test_matches_legacy_pipeline(self, rng, dtype, chunk_rows, chunk_cols, n_threads):
        n, k = 37, 5
        km = _kernel_matrix(n, rng, dtype)
        lab = random_labels(n, k, rng)
        d_legacy, _ = tiled_popcorn_distances_host(km, lab, k, tile_rows=11)
        want = argmin_assign(d_legacy)
        fused = fused_popcorn_argmin(
            km, lab, k, chunk_rows=chunk_rows, chunk_cols=chunk_cols, n_threads=n_threads
        )
        np.testing.assert_array_equal(fused.labels, want)
        assert fused.labels.dtype == np.int32
        np.testing.assert_array_equal(fused.min_d, d_legacy[np.arange(n), want])

    @pytest.mark.parametrize("chunk_rows,chunk_cols", CHUNK_GRID)
    def test_weighted_matches_legacy(self, rng, chunk_rows, chunk_cols):
        n, k = 29, 4
        km = _kernel_matrix(n, rng)
        lab = random_labels(n, k, rng)
        w = rng.uniform(0.5, 2.0, size=n)
        d_legacy, _ = tiled_popcorn_distances_host(km, lab, k, tile_rows=8, weights=w)
        want = argmin_assign(d_legacy)
        fused = fused_popcorn_argmin(
            km, lab, k,
            chunk_rows=chunk_rows, chunk_cols=chunk_cols, n_threads=2, weights=w,
        )
        np.testing.assert_array_equal(fused.labels, want)
        np.testing.assert_array_equal(fused.min_d, d_legacy[np.arange(n), want])

    @given(
        n=st.integers(min_value=3, max_value=48),
        k=st.integers(min_value=1, max_value=7),
        chunk_rows=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
        chunk_cols=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        n_threads=st.sampled_from([1, 2, 8]),
        f32=st.booleans(),
        weighted=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bit_exact(
        self, n, k, chunk_rows, chunk_cols, n_threads, f32, weighted, seed
    ):
        if k > n:
            k = n
        rng = np.random.default_rng(seed)
        dtype = np.float32 if f32 else np.float64
        km = _kernel_matrix(n, rng, dtype)
        lab = random_labels(n, k, rng)
        w = rng.uniform(0.5, 2.0, size=n) if weighted else None
        d_legacy, _ = tiled_popcorn_distances_host(km, lab, k, tile_rows=13, weights=w)
        want = argmin_assign(d_legacy)
        fused = fused_popcorn_argmin(
            km, lab, k,
            chunk_rows=chunk_rows, chunk_cols=chunk_cols, n_threads=n_threads, weights=w,
        )
        np.testing.assert_array_equal(fused.labels, want)
        np.testing.assert_array_equal(fused.min_d, d_legacy[np.arange(n), want])

    def test_matches_reference_argmin(self, rng):
        n, k = 40, 6
        km = _kernel_matrix(n, rng)
        lab = random_labels(n, k, rng)
        ref = distance_matrix_reference(km, lab, k)
        fused = fused_popcorn_argmin(km, lab, k, chunk_rows=9, chunk_cols=2, n_threads=2)
        np.testing.assert_array_equal(fused.labels, argmin_assign(ref))

    def test_tie_breaks_to_lowest_index(self):
        # duplicate points in duplicate clusters: distances tie exactly,
        # and the fused sweep must pick the lowest column like argmin_assign
        km = np.ones((8, 8), dtype=np.float64)
        lab = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=np.int32)
        d_full, _ = popcorn_distances_host(km, lab, 4)
        want = argmin_assign(d_full)
        assert want.max() == 0  # every column ties; all go to cluster 0
        for chunk_cols in (None, 1, 3):
            fused = fused_popcorn_argmin(km, lab, 4, chunk_rows=3, chunk_cols=chunk_cols)
            np.testing.assert_array_equal(fused.labels, want)

    def test_empty_cluster(self, rng):
        n, k = 15, 4
        km = _kernel_matrix(n, rng)
        lab = np.zeros(n, dtype=np.int32)
        lab[7:] = 1  # clusters 2, 3 empty
        d_legacy, _ = tiled_popcorn_distances_host(km, lab, k, tile_rows=4)
        fused = fused_popcorn_argmin(km, lab, k, chunk_rows=4, chunk_cols=1)
        np.testing.assert_array_equal(fused.labels, argmin_assign(d_legacy))

    def test_at_matches_materialised_entries(self, rng):
        n, k = 24, 5
        km = _kernel_matrix(n, rng)
        lab = random_labels(n, k, rng)
        d_full, _ = popcorn_distances_host(km, lab, k)
        fused = fused_popcorn_argmin(km, lab, k, chunk_rows=7, chunk_cols=2)
        rows = np.array([0, 3, 11, 23])
        cols = np.array([4, 0, 2, 1])
        np.testing.assert_array_equal(fused.at(rows, cols), d_full[rows, cols])


# ----------------------------------------------------------------------
# every estimator, every backend face of the engine
# ----------------------------------------------------------------------

CHUNK_KW = {"chunk_rows": 11, "chunk_cols": 2, "n_threads": 2}


class TestEstimatorsBitIdentical:
    """All registered estimators keep bit-identical labels through the
    fused reduction engine — host, tiled-alias, and sharded backends."""

    @pytest.mark.parametrize("name", available_estimators())
    def test_host_chunked_and_tiled_alias(self, name):
        x, _ = make_blobs(36, 3, 2, rng=0)
        base = make_estimator(name, n_clusters=2, seed=0).fit(x)
        for variant in (
            {"backend": "host", **CHUNK_KW},
            {"backend": "host", "tile_rows": 13},  # the compatibility alias
        ):
            kw = filter_params(name, variant)
            est = make_estimator(name, n_clusters=2, seed=0, **kw).fit(x)
            np.testing.assert_array_equal(est.labels_, base.labels_, err_msg=name)

    @pytest.mark.parametrize("name", ["popcorn", "weighted"])
    def test_sharded_chunked(self, name):
        x, _ = make_blobs(48, 3, 3, rng=1)
        base = make_estimator(name, n_clusters=3, seed=0, backend="host").fit(x)
        est = make_estimator(name, n_clusters=3, seed=0, backend="sharded:3", **CHUNK_KW).fit(x)
        np.testing.assert_array_equal(est.labels_, base.labels_)

    def test_auto_backend_resolves_to_host_when_chunked(self):
        x, _ = make_blobs(30, 3, 2, rng=2)
        est = make_estimator("popcorn", n_clusters=2, seed=0, **CHUNK_KW).fit(x)
        assert est.backend_ == "host"

    def test_device_backend_rejects_chunk_params(self):
        x, _ = make_blobs(30, 3, 2, rng=2)
        est = make_estimator("popcorn", n_clusters=2, seed=0, backend="device", **CHUNK_KW)
        with pytest.raises(ConfigError):
            est.fit(x)


class TestPredictChunked:
    def test_predict_matches_unchunked(self, rng):
        x, _ = make_blobs(40, 4, 3, rng=3)
        est = make_estimator("popcorn", n_clusters=3, seed=0, backend="host").fit(x)
        q = rng.standard_normal((17, 4))
        want = est.predict(q)
        for kw in (
            {"chunk_rows": 5, "chunk_cols": 2, "n_threads": 2},
            {"chunk_rows": 1, "chunk_cols": 1},
            {"tile_rows": 6},
        ):
            np.testing.assert_array_equal(est.predict(q, **kw), want)

    def test_predict_batch_matches(self, rng):
        x, _ = make_blobs(40, 4, 3, rng=4)
        est = make_estimator("popcorn", n_clusters=3, seed=0, backend="host").fit(x)
        batches = [rng.standard_normal((9, 4)) for _ in range(3)]
        want = est.predict_batch(batches)
        got = est.predict_batch(batches, chunk_rows=4, chunk_cols=1, n_threads=2)
        np.testing.assert_array_equal(got, want)
