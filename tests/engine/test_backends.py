"""Tests for the pluggable execution backends (repro.engine.backends)."""

import numpy as np
import pytest

from repro import (
    BaselineCUDAKernelKMeans,
    PopcornKernelKMeans,
    WeightedPopcornKernelKMeans,
)
from repro.baselines import random_labels
from repro.engine import (
    DeviceBackend,
    HostBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.errors import AllocationError, ConfigError
from repro.gpu import A100_80GB, Device, DeviceSpec
from repro.kernels import GaussianKernel, PolynomialKernel, kernel_matrix

TINY = DeviceSpec("tiny-gpu", peak_fp32_gflops=19500, mem_bw_gbps=1935,
                  mem_capacity_gb=1e-4)  # 100 KB


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "host" in available_backends()
        assert "device" in available_backends()

    def test_lookup_returns_singletons(self):
        assert isinstance(get_backend("host"), HostBackend)
        assert isinstance(get_backend("device"), DeviceBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_backend("tpu")

    def test_register_requires_name(self):
        class Nameless(HostBackend):
            name = ""

        with pytest.raises(ConfigError):
            register_backend(Nameless())

    def test_estimator_rejects_unknown_backend(self):
        with pytest.raises(ConfigError, match="backend"):
            PopcornKernelKMeans(2, backend="tpu")

    def test_custom_registered_backend_is_usable(self, blobs):
        """register_backend is a real extension point, not decoration."""

        class TracingHostBackend(HostBackend):
            name = "tracing-host"
            steps = 0

            def popcorn_step(self, state, labels, weights=None):
                TracingHostBackend.steps += 1
                return super().popcorn_step(state, labels, weights)

        register_backend(TracingHostBackend())
        try:
            x, _, k = blobs
            m = PopcornKernelKMeans(k, seed=0, backend="tracing-host", max_iter=6).fit(x)
            ref = PopcornKernelKMeans(k, seed=0, backend="host", max_iter=6).fit(x)
            assert m.backend_ == "tracing-host"
            assert TracingHostBackend.steps == m.n_iter_
            assert np.array_equal(m.labels_, ref.labels_)
        finally:
            unregister_backend("tracing-host")
        assert "tracing-host" not in available_backends()


class TestCrossBackendEquivalence:
    """backend='host' and backend='device' run identical numerics."""

    def test_popcorn_labels_identical(self, blobs):
        x, _, k = blobs
        dev = PopcornKernelKMeans(k, seed=0, backend="device", max_iter=15).fit(x)
        host = PopcornKernelKMeans(k, seed=0, backend="host", max_iter=15).fit(x)
        assert np.array_equal(dev.labels_, host.labels_)
        assert host.objective_ == pytest.approx(dev.objective_)
        assert dev.backend_ == "device" and host.backend_ == "host"

    def test_popcorn_objective_history_identical(self, circles):
        x, _, k = circles
        kw = dict(kernel=GaussianKernel(gamma=5.0), seed=3, max_iter=10,
                  check_convergence=False, dtype=np.float64)
        dev = PopcornKernelKMeans(k, backend="device", **kw).fit(x)
        host = PopcornKernelKMeans(k, backend="host", **kw).fit(x)
        assert dev.objective_history_ == host.objective_history_

    def test_popcorn_syrk_path(self, blobs, rng):
        x, _, k = blobs
        init = random_labels(x.shape[0], k, rng)
        dev = PopcornKernelKMeans(k, gram_method="syrk", backend="device").fit(
            x, init_labels=init
        )
        host = PopcornKernelKMeans(k, gram_method="syrk", backend="host").fit(
            x, init_labels=init
        )
        assert host.gram_method_ == "syrk"
        assert np.array_equal(dev.labels_, host.labels_)

    def test_popcorn_precomputed(self, rng):
        n, k = 35, 3
        x = rng.standard_normal((n, 4))
        km = kernel_matrix(x, PolynomialKernel())
        init = random_labels(n, k, rng)
        dev = PopcornKernelKMeans(k, dtype=np.float64, backend="device").fit(
            kernel_matrix=km, init_labels=init
        )
        host = PopcornKernelKMeans(k, dtype=np.float64, backend="host").fit(
            kernel_matrix=km, init_labels=init
        )
        assert np.array_equal(dev.labels_, host.labels_)

    def test_popcorn_tiled_host_matches_tiled_device(self, blobs):
        x, _, k = blobs
        dev = PopcornKernelKMeans(k, seed=2, tile_rows=17, backend="device").fit(x)
        host = PopcornKernelKMeans(k, seed=2, tile_rows=17, backend="host").fit(x)
        assert np.array_equal(dev.labels_, host.labels_)

    def test_tiled_gram_policy_identical_across_backends(self, blobs):
        """Tiled mode forces GEMM and rejects syrk on every backend."""
        x, _, k = blobs
        for backend in ("host", "device"):
            m = PopcornKernelKMeans(k, seed=0, tile_rows=16, backend=backend).fit(x)
            assert m.gram_method_ == "gemm", backend
            with pytest.raises(ConfigError, match="syrk"):
                PopcornKernelKMeans(
                    k, gram_method="syrk", tile_rows=16, backend=backend
                ).fit(x)

    def test_baseline_labels_identical(self, blobs):
        x, _, k = blobs
        dev = BaselineCUDAKernelKMeans(k, seed=0, backend="device", max_iter=15).fit(x)
        host = BaselineCUDAKernelKMeans(k, seed=0, backend="host", max_iter=15).fit(x)
        assert np.array_equal(dev.labels_, host.labels_)

    def test_weighted_labels_identical(self, rng):
        n, k = 40, 3
        x = rng.standard_normal((n, 4))
        km = kernel_matrix(x, PolynomialKernel())
        w = rng.uniform(0.2, 4.0, n)
        init = random_labels(n, k, rng)
        host = WeightedPopcornKernelKMeans(k, backend="host").fit(
            kernel_matrix=km, sample_weight=w, init_labels=init
        )
        dev = WeightedPopcornKernelKMeans(k, backend="device").fit(
            kernel_matrix=km, sample_weight=w, init_labels=init
        )
        assert np.array_equal(host.labels_, dev.labels_)
        assert dev.objective_ == pytest.approx(host.objective_)
        # the device run exposes the modeled weighted pipeline
        assert dev.device_.profiler.count_of("cusparse.spmm") == dev.n_iter_

    def test_host_backend_has_no_device(self, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, seed=0, backend="host").fit(x)
        assert m.device_ is None
        assert m.profiler_.launches  # wall-clock host launches recorded
        assert set(m.timings_) >= {"kernel_matrix", "distances", "argmin_update"}

    def test_host_backend_rejects_device_argument(self, blobs):
        x, _, k = blobs
        with pytest.raises(ConfigError, match="device"):
            PopcornKernelKMeans(k, backend="host", device=Device(A100_80GB)).fit(x)


class TestOverCapacityTiling:
    """The acceptance scenario: tiling fits where the seed code raised."""

    def test_untiled_raises_tiled_fits(self):
        n, k = 300, 3
        rng = np.random.default_rng(0)
        x = rng.standard_normal((n, 4)).astype(np.float32)  # K = 360 KB > 100 KB
        with pytest.raises(AllocationError, match="GB"):
            PopcornKernelKMeans(k, device=TINY, seed=0).fit(x)
        tiled = PopcornKernelKMeans(k, device=TINY, seed=0, tile_rows=16).fit(x)
        assert tiled.labels_.shape == (n,)
        # identical result to an unconstrained run
        big = PopcornKernelKMeans(k, seed=0).fit(x)
        assert np.array_equal(tiled.labels_, big.labels_)

    def test_tiled_precomputed_over_capacity(self, rng):
        n, k = 280, 4
        km = kernel_matrix(rng.standard_normal((n, 3)), PolynomialKernel()).astype(
            np.float32
        )
        init = random_labels(n, k, rng)
        with pytest.raises(AllocationError):
            PopcornKernelKMeans(k, device=TINY).fit(kernel_matrix=km, init_labels=init)
        tiled = PopcornKernelKMeans(k, device=TINY, tile_rows=24).fit(
            kernel_matrix=km, init_labels=init
        )
        host = PopcornKernelKMeans(k, backend="host").fit(
            kernel_matrix=km, init_labels=init
        )
        assert np.array_equal(tiled.labels_, host.labels_)

    def test_oversized_tile_still_raises_with_guidance(self):
        n = 300
        x = np.random.default_rng(1).standard_normal((n, 4)).astype(np.float32)
        with pytest.raises(AllocationError, match="tile_rows"):
            PopcornKernelKMeans(3, device=TINY, tile_rows=200).fit(x)

    def test_allocator_clean_after_tiled_fit(self):
        dev = Device(TINY)
        x = np.random.default_rng(2).standard_normal((250, 4)).astype(np.float32)
        PopcornKernelKMeans(3, device=dev, seed=0, tile_rows=16, max_iter=4).fit(x)
        assert dev.allocated_bytes == 0


class TestProfilerSnapshot:
    """timings_ reflects one fit even on a shared, accumulating device."""

    def test_refit_on_shared_device_does_not_merge_timings(self, blobs):
        x, _, k = blobs
        dev = Device(A100_80GB)
        kw = dict(device=dev, max_iter=3, check_convergence=False)
        m1 = PopcornKernelKMeans(k, seed=0, **kw).fit(x)
        t1 = dict(m1.timings_)
        m2 = PopcornKernelKMeans(k, seed=1, **kw).fit(x)
        # the device profiler accumulates ...
        assert dev.profiler.count_of("cusparse.spmm") == 6
        # ... but each fit reports only its own launches
        for phase in ("kernel_matrix", "distances", "argmin_update"):
            assert m2.timings_[phase] == pytest.approx(t1[phase]), phase

    def test_two_estimators_sharing_one_device(self, blobs):
        x, _, k = blobs
        dev = Device(A100_80GB)
        pop = PopcornKernelKMeans(
            k, device=dev, seed=0, max_iter=3, check_convergence=False
        ).fit(x)
        base = BaselineCUDAKernelKMeans(
            k, device=dev, seed=0, max_iter=3, check_convergence=False
        ).fit(x)
        # the baseline's snapshot must not contain popcorn's SpMM time
        solo = BaselineCUDAKernelKMeans(
            k, seed=0, max_iter=3, check_convergence=False
        ).fit(x)
        for phase in ("kernel_matrix", "distances", "argmin_update"):
            assert base.timings_[phase] == pytest.approx(solo.timings_[phase]), phase
        assert sum(pop.timings_.values()) < dev.elapsed_s()
