"""The engine-level out-of-sample predict contract, across the family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    ElkanKMeans,
    LloydKMeans,
    NystromKernelKMeans,
    PopcornKernelKMeans,
    PRMLTKernelKMeans,
    SpectralKernelKMeans,
    WeightedPopcornKernelKMeans,
)
from repro.core import OnTheFlyKernelKMeans
from repro.data import make_blobs
from repro.engine.base import OutOfSamplePredictor
from repro.errors import ConfigError, ShapeError
from repro.kernels import PolynomialKernel

ALL_PREDICTORS = (
    PopcornKernelKMeans,
    WeightedPopcornKernelKMeans,
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    NystromKernelKMeans,
    SpectralKernelKMeans,
    OnTheFlyKernelKMeans,
    PRMLTKernelKMeans,
    LloydKMeans,
    ElkanKMeans,
)


@pytest.fixture(scope="module")
def blobs64():
    x, _ = make_blobs(90, 5, 3, rng=7)
    q = np.random.default_rng(42).standard_normal((19, 5))
    return x.astype(np.float64), q, 3


class TestUnifiedContract:
    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_every_estimator_shares_the_mixin(self, cls):
        """One predict implementation: no estimator-local signature drift."""
        assert issubclass(cls, OutOfSamplePredictor)
        assert cls.predict is OutOfSamplePredictor.predict
        assert cls.predict_batch is OutOfSamplePredictor.predict_batch

    @pytest.mark.parametrize(
        "make",
        [
            lambda k: PopcornKernelKMeans(k, dtype=np.float64, max_iter=6, seed=0),
            lambda k: BaselineCUDAKernelKMeans(k, dtype=np.float64, max_iter=6, seed=0),
            lambda k: DistributedPopcornKernelKMeans(k, n_devices=3, max_iter=6, seed=0),
            lambda k: NystromKernelKMeans(k, n_landmarks=40, seed=0),
            lambda k: OnTheFlyKernelKMeans(k, block_rows=32, max_iter=6, seed=0),
            lambda k: PRMLTKernelKMeans(k, max_iter=6, seed=0),
            lambda k: LloydKMeans(k, seed=0),
            lambda k: ElkanKMeans(k, seed=0),
        ],
        ids=[
            "popcorn", "baseline", "distributed", "nystrom",
            "onthefly", "prmlt", "lloyd", "elkan",
        ],
    )
    def test_predict_and_batch_agree(self, make, blobs64):
        x, q, k = blobs64
        est = make(k).fit(x)
        labels = est.predict(q)
        assert labels.dtype == np.int32
        assert labels.shape == (q.shape[0],)
        assert np.all((0 <= labels) & (labels < k))
        # batching and query-tiling cannot change a single label
        assert np.array_equal(est.predict_batch([q[:7], q[7:]]), labels)
        assert np.array_equal(est.predict(q, tile_rows=4), labels)

    def test_unfitted_raises(self):
        with pytest.raises(ConfigError, match="not fitted"):
            PopcornKernelKMeans(3).predict(np.zeros((2, 2)))
        with pytest.raises(ConfigError, match="not fitted"):
            LloydKMeans(3).predict(np.zeros((2, 2)))

    def test_x_and_cross_kernel_mutually_exclusive(self, blobs64):
        x, q, k = blobs64
        est = PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x)
        with pytest.raises(ConfigError, match="not both"):
            est.predict(q, cross_kernel=np.zeros((2, x.shape[0])))

    def test_neither_argument_raises(self, blobs64):
        x, _, k = blobs64
        est = PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x)
        with pytest.raises(ShapeError, match="query points"):
            est.predict()

    def test_centers_estimator_rejects_cross_kernel(self, blobs64):
        x, _, k = blobs64
        est = LloydKMeans(k, seed=0).fit(x)
        with pytest.raises(ConfigError, match="centers"):
            est.predict(cross_kernel=np.zeros((2, x.shape[0])))

    def test_empty_query_block_returns_empty_labels(self, blobs64):
        """Zero queries is a valid (drained-queue) request, not an error."""
        x, _, k = blobs64
        for est in (
            PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x),
            LloydKMeans(k, seed=0).fit(x),
        ):
            out = est.predict(np.empty((0, x.shape[1])))
            assert out.shape == (0,) and out.dtype == np.int32
            assert est.predict_batch([]).shape == (0,)
            assert est.predict_batch([np.empty((0, x.shape[1])), x[:3]]).shape == (3,)
        km_est = PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x)
        assert km_est.predict(cross_kernel=np.empty((0, x.shape[0]))).shape == (0,)

    def test_cross_kernel_width_checked(self, blobs64):
        x, _, k = blobs64
        kern = PolynomialKernel()
        est = PopcornKernelKMeans(k, kernel=kern, dtype=np.float64, seed=0).fit(x)
        with pytest.raises(ShapeError, match="columns"):
            est.predict(cross_kernel=np.zeros((2, x.shape[0] + 1)))


class TestSelfConsistency:
    def test_training_points_reproduce_labels(self, blobs64):
        """Converged fits assign their own training points to labels_."""
        x, _, k = blobs64
        for est in (
            PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x),
            BaselineCUDAKernelKMeans(k, dtype=np.float64, seed=0).fit(x),
            DistributedPopcornKernelKMeans(k, n_devices=2, seed=0).fit(x),
            OnTheFlyKernelKMeans(k, block_rows=32, seed=0).fit(x),
            PRMLTKernelKMeans(k, seed=0).fit(x),
            LloydKMeans(k, seed=0).fit(x),
        ):
            assert np.array_equal(est.predict(x), est.labels_), type(est).__name__

    def test_family_agrees_on_queries_from_same_init(self, blobs64):
        """Identical numerics: Popcorn/baseline/distributed/on-the-fly give
        the same out-of-sample assignments from the same initial labels."""
        x, q, k = blobs64
        init = np.random.default_rng(0).integers(0, k, x.shape[0]).astype(np.int32)
        ests = [
            PopcornKernelKMeans(k, dtype=np.float64, max_iter=10, seed=0).fit(
                x, init_labels=init
            ),
            BaselineCUDAKernelKMeans(k, dtype=np.float64, max_iter=10, seed=0).fit(
                x, init_labels=init
            ),
            DistributedPopcornKernelKMeans(
                k, n_devices=3, dtype=np.float64, max_iter=10, seed=0
            ).fit(x, init_labels=init),
            OnTheFlyKernelKMeans(k, block_rows=16, max_iter=10, seed=0).fit(
                x, init_labels=init
            ),
        ]
        ref = ests[0].predict(q)
        for est in ests[1:]:
            assert np.array_equal(est.predict(q), ref), type(est).__name__

    def test_weighted_cross_kernel_on_training_rows(self, blobs64):
        x, _, k = blobs64
        kern = PolynomialKernel()
        km = kern.pairwise(x)
        est = WeightedPopcornKernelKMeans(k, seed=0).fit(kernel_matrix=km)
        assert np.array_equal(est.predict(cross_kernel=km), est.labels_)

    def test_precomputed_fit_requires_cross_kernel(self, blobs64):
        x, q, k = blobs64
        km = PolynomialKernel().pairwise(x)
        est = PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(kernel_matrix=km)
        with pytest.raises(ShapeError, match="cross_kernel"):
            est.predict(q)

    def test_nystrom_training_embedding_is_reused(self, blobs64):
        """Out-of-sample embedding of the training points equals the fit
        embedding bit for bit, so predict(x) matches the inner Lloyd."""
        x, _, k = blobs64
        est = NystromKernelKMeans(k, n_landmarks=30, seed=0).fit(x)
        phi_q = est._query_features(x)
        assert np.array_equal(phi_q, est.embedding_)


class TestTilingProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        tile=st.integers(1, 25),
        m=st.integers(1, 30),
    )
    def test_query_tiling_is_bit_exact(self, seed, tile, m):
        """Any query tiling yields bit-identical labels to monolithic."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((50, 4))
        q = rng.standard_normal((m, 4))
        est = PopcornKernelKMeans(
            4, dtype=np.float64, backend="host", max_iter=4, seed=seed
        ).fit(x)
        assert np.array_equal(est.predict(q, tile_rows=tile), est.predict(q))
