"""ModelRefresher: shadow partial_fit, versioned artifacts, hot swap.

The concurrency test is the acceptance check of the refresh pipeline:
a running service keeps answering ``predict_many`` calls while models
are swapped underneath it — zero dropped requests, and every answer is
consistent with a model the service actually served.
"""

import os
import threading

import numpy as np
import pytest

from repro import LloydKMeans, PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.serve import ModelRefresher, PredictionService, load_model, save_model


@pytest.fixture()
def online_model():
    x = make_blobs(60, 4, 3, rng=0)[0].astype(np.float64)
    est = PopcornKernelKMeans(
        3, dtype=np.float64, backend="host", seed=0, batch_size=20
    )
    est.partial_fit(x)
    return est, x


class TestShadowAndArtifacts:
    def test_shadow_is_independent(self, online_model, tmp_path):
        model, x = online_model
        q = x[:15]
        with PredictionService(model, n_workers=1) as svc:
            ref = ModelRefresher(svc, str(tmp_path))
            assert ref.shadow is not svc.model
            before = svc.predict_many(q)
            ref.observe(x[30:])  # shadow moves, live model does not
            assert np.array_equal(svc.predict_many(q), before)
            assert ref.n_batches_observed > model.n_batches_seen_

    def test_refresh_publishes_versioned_artifact_and_swaps(
        self, online_model, tmp_path
    ):
        model, x = online_model
        with PredictionService(model, n_workers=1) as svc:
            ref = ModelRefresher(svc, str(tmp_path), basename="km")
            ref.observe(x)
            path = ref.refresh()
            assert os.path.basename(path) == "km-v0001.npz"
            assert ref.latest_artifact() == path
            assert svc.model is not model  # the *loaded* artifact serves
            stats = svc.stats()
            assert stats["model_version"] == 2
            assert stats["model_swaps"] == 1
            # served answers come from the published artifact
            want = load_model(path).predict(x[:10])
            assert np.array_equal(svc.predict_many(x[:10]), want)
            ref.observe(x[:20])
            assert os.path.basename(ref.refresh()) == "km-v0002.npz"
            assert svc.stats()["model_version"] == 3

    def test_version_numbering_continues(self, online_model, tmp_path):
        model, x = online_model
        (tmp_path / "model-v0007.npz").write_bytes(b"")
        with PredictionService(model, n_workers=1) as svc:
            ref = ModelRefresher(svc, str(tmp_path))
            assert os.path.basename(ref.refresh()) == "model-v0008.npz"

    def test_no_stray_temp_files(self, online_model, tmp_path):
        model, x = online_model
        with PredictionService(model, n_workers=1) as svc:
            ref = ModelRefresher(svc, str(tmp_path))
            ref.observe(x[:20])
            ref.refresh()
        names = sorted(os.listdir(tmp_path))
        assert names == ["model-v0001.npz"]

    def test_validation(self, online_model, tmp_path):
        model, _ = online_model
        with pytest.raises(ConfigError, match="PredictionService"):
            ModelRefresher(model, str(tmp_path))
        with PredictionService(model, n_workers=1) as svc:
            with pytest.raises(ConfigError, match="basename"):
                ModelRefresher(svc, str(tmp_path), basename="")
        x = make_blobs(30, 3, 2, rng=1)[0]
        lloyd = LloydKMeans(2, seed=0).fit(x)
        with PredictionService(lloyd, n_workers=1) as svc:
            with pytest.raises(ConfigError, match="supports_partial_fit"):
                ModelRefresher(svc, str(tmp_path))


class TestOnlineArtifactRoundTrip:
    def test_v3_schema_preserves_online_counters(self, online_model, tmp_path):
        model, x = online_model
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.n_batches_seen_ == model.n_batches_seen_
        np.testing.assert_array_equal(loaded._online.counts, model._online.counts)
        assert loaded._online.counters() == model._online.counters()
        assert np.array_equal(loaded.predict(x), model.predict(x))

    def test_loaded_model_resumes_partial_fit(self, online_model, tmp_path):
        model, x = online_model
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        loaded = load_model(path)
        before = loaded.n_batches_seen_
        loaded.partial_fit(x[:20])
        assert loaded.n_batches_seen_ == before + 1
        assert loaded._online.n_support == model._online.n_support + 20


class TestHotSwapConcurrency:
    def test_zero_dropped_requests_across_swaps(self):
        x = make_blobs(80, 4, 3, rng=3)[0].astype(np.float64)
        q = np.random.default_rng(7).standard_normal((23, 4))
        model_a = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", seed=0, max_iter=6
        ).fit(x)
        model_b = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", seed=4, max_iter=6
        ).fit(x)
        want_a = model_a.predict(q)
        want_b = model_b.predict(q)

        errors = []
        results = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    results.append(np.asarray(svc.predict_many(q)))
                except Exception as exc:  # any failure fails the test
                    errors.append(exc)
                    return

        with PredictionService(
            model_a, batch_size=8, n_workers=2, cache_size=64
        ) as svc:
            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for i in range(10):  # swap back and forth under load
                svc.swap_model(model_b if i % 2 == 0 else model_a)
            stop.set()
            for t in threads:
                t.join()
            final = svc.predict_many(q)
            stats = svc.stats()

        assert not errors
        assert len(results) > 0
        # every in-flight answer is element-wise consistent with one of
        # the two served models (micro-batches bind a model each)
        for got in results:
            assert got.shape == want_a.shape
            assert np.all((got == want_a) | (got == want_b))
        # after the last swap (even i = 9 -> model_a) the cache holds no
        # stale labels: answers match the live model exactly
        assert np.array_equal(final, want_a)
        assert stats["model_swaps"] == 10
        assert stats["model_version"] == 11

    def test_swap_rejects_unfitted_and_closed(self):
        x = make_blobs(40, 3, 2, rng=0)[0]
        model = PopcornKernelKMeans(2, dtype=np.float64, backend="host", seed=0).fit(x)
        svc = PredictionService(model, n_workers=1)
        with pytest.raises(ConfigError, match="not fitted"):
            svc.swap_model(PopcornKernelKMeans(2))
        svc.close()
        with pytest.raises(ConfigError, match="closed"):
            svc.swap_model(model)
