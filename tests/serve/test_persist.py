"""Artifact persistence: bit-exact round trips + schema checking.

The headline property: for every estimator in the family and every
serialisable kernel, ``load_model(save_model(est, p)).predict(q)`` is
**bit-identical** to ``est.predict(q)`` on held-out queries.
"""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BaselineCUDAKernelKMeans,
    DistributedPopcornKernelKMeans,
    ElkanKMeans,
    LloydKMeans,
    NystromKernelKMeans,
    PopcornKernelKMeans,
    PRMLTKernelKMeans,
    WeightedPopcornKernelKMeans,
)
from repro.core import OnTheFlyKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.kernels import LaplacianKernel, kernel_by_name
from repro.serve import (
    MODEL_SCHEMA_VERSION,
    inspect_model,
    load_model,
    save_model,
)

ALL_KERNELS = (
    "linear",
    "polynomial",
    "gaussian",
    "sigmoid",
    "cosine",
    "rational-quadratic",
)

POINT_ESTIMATORS = {
    "popcorn": lambda k, kern: PopcornKernelKMeans(
        k, kernel=kern, dtype=np.float64, max_iter=6, seed=0
    ),
    "baseline": lambda k, kern: BaselineCUDAKernelKMeans(
        k, kernel=kern, dtype=np.float64, max_iter=6, seed=0
    ),
    "distributed": lambda k, kern: DistributedPopcornKernelKMeans(
        k, kernel=kern, n_devices=2, max_iter=6, seed=0
    ),
    "nystrom": lambda k, kern: NystromKernelKMeans(
        k, kernel=kern, n_landmarks=32, seed=0
    ),
    "onthefly": lambda k, kern: OnTheFlyKernelKMeans(
        k, kernel=kern, block_rows=24, max_iter=6, seed=0
    ),
    "prmlt": lambda k, kern: PRMLTKernelKMeans(k, kernel=kern, max_iter=6, seed=0),
    "lloyd": lambda k, kern: LloydKMeans(k, seed=0),
    "elkan": lambda k, kern: ElkanKMeans(k, seed=0),
}


def _data(seed=3, n=70, d=4, k=3):
    x, _ = make_blobs(n, d, k, rng=seed)
    q = np.random.default_rng(seed + 100).standard_normal((17, d))
    return x.astype(np.float64), q, k


class TestRoundTripBitExact:
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize("estimator", sorted(POINT_ESTIMATORS))
    def test_save_load_predict_identical(self, estimator, kernel, tmp_path):
        """save -> load -> predict matches in-memory predict bit for bit."""
        x, q, k = _data()
        est = POINT_ESTIMATORS[estimator](k, kernel_by_name(kernel)).fit(x)
        expected = est.predict(q)
        path = save_model(est, str(tmp_path / "m.npz"))
        loaded = load_model(path)
        assert type(loaded) is type(est)
        assert np.array_equal(loaded.predict(q), expected)
        assert np.array_equal(loaded.labels_, est.labels_)
        # batch path rides the same arrays
        assert np.array_equal(loaded.predict_batch([q[:5], q[5:]]), expected)

    def test_weighted_cross_kernel_round_trip(self, tmp_path):
        x, q, k = _data()
        kern = kernel_by_name("gaussian")
        km = kern.pairwise(x)
        w = np.random.default_rng(0).uniform(0.5, 2.0, size=x.shape[0])
        est = WeightedPopcornKernelKMeans(k, seed=0).fit(kernel_matrix=km, sample_weight=w)
        kc = kern.pairwise(q, x)
        expected = est.predict(cross_kernel=kc)
        loaded = load_model(save_model(est, str(tmp_path / "w.npz")))
        assert np.array_equal(loaded.predict(cross_kernel=kc), expected)

    def test_spectral_cross_kernel_round_trip(self, tmp_path):
        """With spectral, the tenth registered estimator round-trips too:
        queries supply cross-kernel rows in the normalized-cut space."""
        from repro import SpectralKernelKMeans
        from repro.data import make_moons
        from repro.graph import ncut_kernel
        import networkx as nx

        x, _ = make_moons(80, rng=1)
        est = SpectralKernelKMeans(2, seed=0).fit(x)
        a = nx.to_numpy_array(est.graph_, nodelist=range(x.shape[0]), weight="weight")
        km, _ = ncut_kernel(a)
        expected = est.predict(cross_kernel=km)  # training rows as queries
        loaded = load_model(save_model(est, str(tmp_path / "s.npz")))
        assert type(loaded) is SpectralKernelKMeans
        assert np.array_equal(loaded.predict(cross_kernel=km), expected)

    def test_laplacian_precomputed_round_trip(self, tmp_path):
        """The non-Gram-expressible kernel goes through the cross-kernel."""
        x, q, k = _data()
        kern = LaplacianKernel(gamma=0.5)
        est = PopcornKernelKMeans(k, kernel=kern, dtype=np.float64, seed=0).fit(
            kernel_matrix=kern.pairwise(x)
        )
        kc = kern.pairwise(q, x)
        expected = est.predict(cross_kernel=kc)
        loaded = load_model(save_model(est, str(tmp_path / "l.npz")))
        assert np.array_equal(loaded.predict(cross_kernel=kc), expected)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        kernel=st.sampled_from(ALL_KERNELS),
        tile=st.one_of(st.none(), st.integers(1, 11)),
    )
    def test_round_trip_property(self, seed, kernel, tile, tmp_path_factory):
        """Random data / kernel / tiling: the round trip never drifts a bit."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((40, 3))
        q = rng.standard_normal((9, 3))
        est = PopcornKernelKMeans(
            3, kernel=kernel_by_name(kernel), dtype=np.float64, max_iter=4, seed=seed
        ).fit(x)
        path = str(tmp_path_factory.mktemp("rt") / "m.npz")
        loaded = load_model(save_model(est, path))
        assert np.array_equal(
            loaded.predict(q, tile_rows=tile), est.predict(q, tile_rows=tile)
        )


class TestSchemaChecking:
    def test_schema_version_mismatch_rejected(self, tmp_path):
        x, _, k = _data()
        path = save_model(LloydKMeans(k, seed=0).fit(x), str(tmp_path / "m.npz"))
        # rewrite the header with a future schema version
        with np.load(path) as npz:
            arrays = {key: npz[key] for key in npz.files if key != "__meta__"}
            meta = json.loads(bytes(npz["__meta__"]).decode())
        meta["schema_version"] = MODEL_SCHEMA_VERSION + 1
        header = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, __meta__=header, **arrays)
        with pytest.raises(ConfigError, match="schema version"):
            load_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no such"):
            load_model(str(tmp_path / "absent.npz"))

    def test_not_an_artifact(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as fh:
            fh.write(b"\x00\x01garbage" * 32)
        with pytest.raises(ConfigError, match="not a readable"):
            load_model(path)

    def test_npz_without_header_rejected(self, tmp_path):
        path = str(tmp_path / "plain.npz")
        with open(path, "wb") as fh:
            np.savez(fh, a=np.zeros(3))
        with pytest.raises(ConfigError, match="metadata header"):
            load_model(path)

    def test_unknown_estimator_rejected(self, tmp_path):
        x, _, k = _data()
        path = save_model(LloydKMeans(k, seed=0).fit(x), str(tmp_path / "m.npz"))
        with np.load(path) as npz:
            arrays = {key: npz[key] for key in npz.files if key != "__meta__"}
            meta = json.loads(bytes(npz["__meta__"]).decode())
        meta["estimator"] = "EvilEstimator"
        header = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, __meta__=header, **arrays)
        with pytest.raises(ConfigError, match="unknown estimator"):
            load_model(path)

    def test_unfitted_estimator_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not fitted"):
            save_model(LloydKMeans(3), str(tmp_path / "m.npz"))

    def test_custom_estimator_rejected(self, tmp_path):
        class Custom:
            labels_ = np.zeros(3, dtype=np.int32)
            n_clusters = 1

        with pytest.raises(ConfigError, match="cannot persist"):
            save_model(Custom(), str(tmp_path / "m.npz"))

    def test_custom_kernel_rejected(self, tmp_path):
        from repro.kernels import PolynomialKernel

        class MyKernel(PolynomialKernel):
            pass

        x, _, k = _data()
        est = PopcornKernelKMeans(k, kernel=MyKernel(), dtype=np.float64, seed=0).fit(x)
        with pytest.raises(ConfigError, match="custom kernel"):
            save_model(est, str(tmp_path / "m.npz"))

    def test_artifact_is_picklefree_zip(self, tmp_path):
        x, _, k = _data()
        path = save_model(
            PopcornKernelKMeans(k, dtype=np.float64, seed=0).fit(x),
            str(tmp_path / "m.npz"),
        )
        assert zipfile.is_zipfile(path)
        loaded = np.load(path, allow_pickle=False)  # must not need pickle
        assert "__meta__" in loaded.files
        loaded.close()


class TestClassicalCentersAliasing:
    def test_centers_stored_once_and_realiased(self, tmp_path):
        """Lloyd/Elkan artifacts carry one centers matrix, not two."""
        x, _, k = _data()
        for cls in (LloydKMeans, ElkanKMeans):
            est = cls(k, seed=0).fit(x)
            path = save_model(est, str(tmp_path / f"{cls.__name__}.npz"))
            meta = inspect_model(path)
            assert "centers" not in meta["array_info"]
            assert "support_centers" in meta["array_info"]
            loaded = load_model(path)
            assert np.array_equal(loaded.centers_, est.centers_)
            assert loaded.centers_ is loaded._support_centers


class TestInspect:
    def test_metadata_surface(self, tmp_path):
        x, _, k = _data()
        est = PopcornKernelKMeans(
            k, kernel="gaussian", dtype=np.float64, max_iter=5, seed=0
        ).fit(x)
        meta = inspect_model(save_model(est, str(tmp_path / "m.npz")))
        assert meta["estimator"] == "popcorn"
        assert meta["schema_version"] == MODEL_SCHEMA_VERSION
        assert meta["params"]["n_clusters"] == k
        assert meta["params"]["kernel"]["name"] == "gaussian"
        assert meta["fit"]["n_iter"] == est.n_iter_
        assert meta["array_info"]["labels"]["shape"] == [x.shape[0]]
        assert meta["array_info"]["support_x"]["shape"] == list(x.shape)
        assert meta["file_bytes"] > 0
