"""Autoscale policy simulator: deterministic saturation curves."""

import numpy as np
import pytest

from repro import PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.serve import saturation_curve, workers_for
from repro.serve.autoscale import DEFAULT_DISPATCH_OVERHEAD_S, curve_for_model

SHAPE = dict(n_support=1_000_000, dim=64, n_clusters=16, batch_size=64)


class TestSaturationCurve:
    def test_two_regimes_and_monotone(self):
        curve = saturation_curve(workers=(1, 2, 4, 8, 16, 32, 64), **SHAPE)
        qps = [p.saturation_qps for p in curve]
        assert qps == sorted(qps)
        # below the knee scaling is exactly linear in workers ...
        assert curve[1].saturation_qps == pytest.approx(
            2 * curve[0].saturation_qps
        )
        assert not curve[0].ingress_limited
        # ... above it the ingress ceiling caps the fleet
        assert curve[-1].ingress_limited
        assert curve[-1].saturation_qps == pytest.approx(
            SHAPE["batch_size"] / DEFAULT_DISPATCH_OVERHEAD_S
        )

    def test_deterministic_across_calls(self):
        a = saturation_curve(**SHAPE)
        b = saturation_curve(**SHAPE)
        assert a == b  # pure function of shape + spec: the bench gate's basis

    def test_worker_counts_sorted_and_deduped(self):
        curve = saturation_curve(workers=(4, 1, 4, 2), **SHAPE)
        assert [p.workers for p in curve] == [1, 2, 4]

    def test_bigger_support_is_slower(self):
        small = saturation_curve(
            n_support=10_000, dim=64, n_clusters=16, batch_size=64
        )
        big = saturation_curve(**SHAPE)
        assert small[0].worker_qps > big[0].worker_qps

    @pytest.mark.parametrize(
        "bad",
        [
            {"batch_size": 0},
            {"workers": ()},
            {"workers": (0,)},
            {"dispatch_overhead_s": 0.0},
            {"n_support": 0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            saturation_curve(**{**SHAPE, **bad})

    def test_row_rendering(self):
        (point,) = saturation_curve(workers=(1,), **SHAPE)
        row = point.to_row()
        assert row[0] == 1 and row[-1] in ("ingress", "workers")


class TestWorkersFor:
    def test_smallest_sufficient_fleet(self):
        one = saturation_curve(workers=(1,), **SHAPE)[0]
        assert workers_for(one.worker_qps, **SHAPE) == 1
        assert workers_for(1.5 * one.worker_qps, **SHAPE) == 2
        # the knee itself is reachable ...
        assert workers_for(one.ingress_qps, **SHAPE) is not None
        # ... but past the ingress ceiling no fleet size helps
        assert workers_for(2 * one.ingress_qps, **SHAPE) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            workers_for(0.0, **SHAPE)
        with pytest.raises(ConfigError):
            workers_for(10.0, max_workers=0, **SHAPE)


class TestCurveForModel:
    def test_reads_shape_off_a_fitted_model(self):
        x = make_blobs(120, 6, 3, rng=0)[0].astype(np.float64)
        model = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", max_iter=4, seed=0
        ).fit(x)
        curve = curve_for_model(model, batch_size=32, workers=(1, 2))
        explicit = saturation_curve(
            n_support=120, dim=6, n_clusters=3, batch_size=32, workers=(1, 2)
        )
        assert curve == explicit

    def test_precomputed_kernel_model_rejected(self):
        x = make_blobs(40, 4, 2, rng=0)[0].astype(np.float64)
        model = PopcornKernelKMeans(
            2, dtype=np.float64, backend="host", max_iter=3, seed=0
        ).fit(kernel_matrix=x @ x.T)
        with pytest.raises(ConfigError, match="precomputed"):
            curve_for_model(model, batch_size=32)
