"""PredictionService: micro-batching, LRU cache, workers, stats."""

import threading

import numpy as np
import pytest

from repro import LloydKMeans, PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError, Overloaded
from repro.serve import PredictionService


@pytest.fixture(scope="module")
def fitted():
    x = make_blobs(80, 4, 3, rng=5)[0].astype(np.float64)
    model = PopcornKernelKMeans(
        3, dtype=np.float64, backend="host", max_iter=6, seed=0
    ).fit(x)
    q = np.random.default_rng(9).standard_normal((41, 4))
    return model, q


class TestCorrectness:
    def test_served_labels_match_direct_predict(self, fitted):
        model, q = fitted
        expected = model.predict(q)
        with PredictionService(model, batch_size=8, max_delay_ms=1.0) as svc:
            assert np.array_equal(svc.predict_many(q), expected)

    def test_single_predict_and_submit(self, fitted):
        model, q = fitted
        expected = model.predict(q)
        with PredictionService(model, batch_size=4) as svc:
            assert svc.predict(q[0]) == expected[0]
            fut = svc.submit(q[1])
            assert fut.result() == expected[1]

    def test_multiple_workers_match(self, fitted):
        model, q = fitted
        expected = model.predict(q)
        with PredictionService(model, batch_size=4, n_workers=4) as svc:
            assert np.array_equal(svc.predict_many(q), expected)

    def test_concurrent_clients(self, fitted, lockdep):
        model, q = fitted
        expected = model.predict(q)
        results = {}
        with PredictionService(model, batch_size=8, n_workers=2) as svc:
            def client(tag):
                results[tag] = svc.predict_many(q)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for got in results.values():
            assert np.array_equal(got, expected)

    def test_tile_rows_forwarded(self, fitted):
        model, q = fitted
        expected = model.predict(q)
        with PredictionService(model, batch_size=64, tile_rows=5) as svc:
            assert np.array_equal(svc.predict_many(q), expected)

    def test_lloyd_model_served(self):
        x = make_blobs(60, 3, 3, rng=1)[0]
        model = LloydKMeans(3, seed=0).fit(x)
        q = np.random.default_rng(2).standard_normal((11, 3))
        with PredictionService(model, batch_size=4) as svc:
            assert np.array_equal(svc.predict_many(q), model.predict(q))


class TestBatchingAndCache:
    def test_batches_fuse_requests(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=64, max_delay_ms=50.0) as svc:
            svc.predict_many(q)
            st = svc.stats()
        # all 41 queries arrived before the delay expired: few batches
        assert st["batches"] < q.shape[0]
        assert st["mean_batch_size"] > 1.0

    def test_cache_hits_on_repeat(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=16, cache_size=256) as svc:
            first = svc.predict_many(q)
            second = svc.predict_many(q)
            st = svc.stats()
        assert np.array_equal(first, second)
        assert st["cache_hits"] == q.shape[0]
        assert st["cache_hit_rate"] == pytest.approx(0.5)

    def test_cache_disabled(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=16, cache_size=0) as svc:
            svc.predict_many(q)
            svc.predict_many(q)
            assert svc.stats()["cache_hits"] == 0

    def test_cache_eviction_bounds_memory(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=16, cache_size=5) as svc:
            svc.predict_many(q)
            assert len(svc._cache) <= 5

    def test_stats_shape(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=8) as svc:
            svc.predict_many(q)
            st = svc.stats()
        assert st["requests"] == q.shape[0]
        assert st["served"] == q.shape[0]
        assert st["queries_per_s"] > 0
        assert 0 <= st["latency_p50_ms"] <= st["latency_p95_ms"] <= st["latency_max_ms"]

    def test_profiler_records_batches(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=8) as svc:
            svc.predict_many(q)
            prof = svc.profiler_
        launches = prof.launches_of("serve.predict_batch")
        assert launches
        assert sum(la.meta["batch"] for la in launches) == q.shape[0]
        assert all(la.phase == "serve" for la in launches)


class TestLifecycleAndValidation:
    def test_submit_after_close_raises(self, fitted):
        model, q = fitted
        svc = PredictionService(model)
        svc.close()
        with pytest.raises(ConfigError, match="closed"):
            svc.submit(q[0])

    def test_close_idempotent(self, fitted):
        model, _ = fitted
        svc = PredictionService(model)
        svc.close()
        svc.close()

    def test_unfitted_model_rejected(self):
        with pytest.raises(ConfigError, match="not fitted"):
            PredictionService(PopcornKernelKMeans(3))

    def test_bad_knobs_rejected(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigError):
            PredictionService(model, batch_size=0)
        with pytest.raises(ConfigError):
            PredictionService(model, n_workers=0)
        with pytest.raises(ConfigError):
            PredictionService(model, cache_size=-1)
        with pytest.raises(ConfigError):
            PredictionService(model, max_delay_ms=-1.0)

    def test_non_vector_query_rejected(self, fitted):
        model, q = fitted
        with PredictionService(model) as svc:
            with pytest.raises(ConfigError, match="1-D"):
                svc.submit(q)  # 2-D block must go through predict_many

    def test_prediction_errors_propagate_to_futures(self, fitted):
        model, _ = fitted
        with PredictionService(model, batch_size=4) as svc:
            fut = svc.submit(np.zeros(9))  # wrong dimensionality for the kernel
            with pytest.raises(Exception):
                fut.result(timeout=5)

    def test_ragged_batch_isolates_the_bad_request(self, fitted):
        """A malformed row must fail alone; batch-mates still get labels
        and the worker thread survives for later requests."""
        model, q = fitted
        expected = model.predict(q[:2])
        with PredictionService(model, batch_size=8, max_delay_ms=20.0) as svc:
            good0 = svc.submit(q[0])
            bad = svc.submit(np.zeros(9))  # ragged: np.stack cannot fuse these
            good1 = svc.submit(q[1])
            assert good0.result(timeout=5) == expected[0]
            assert good1.result(timeout=5) == expected[1]
            with pytest.raises(Exception):
                bad.result(timeout=5)
            # the worker is still alive and serving
            assert svc.predict(q[2]) == model.predict(q[2:3])[0]


class _SlowModel:
    """Wraps a fitted model, charging a fixed sleep per predict batch."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s
        self.labels_ = inner.labels_

    def predict(self, rows, **kw):
        import time

        time.sleep(self._delay_s)
        return self._inner.predict(rows, **kw)


class TestAdmissionControl:
    def test_queue_bound_sheds_under_burst(self, fitted):
        model, q = fitted
        slow = _SlowModel(model, 0.02)
        accepted, shed = [], 0
        with PredictionService(
            slow, batch_size=2, max_delay_ms=0.0, n_workers=1,
            queue_bound=3, cache_size=0,
        ) as svc:
            for row in np.tile(q, (3, 1)):
                try:
                    accepted.append(svc.submit(row))
                except Overloaded:
                    shed += 1
            for fut in accepted:  # every admitted request still answers
                assert fut.result(timeout=10) >= 0
            stats = svc.stats()
        assert shed > 0
        assert stats["shed"] == shed
        # rejected requests never corrupt the counters
        assert stats["requests"] == stats["served"] + stats["shed"]
        assert stats["served"] == len(accepted)

    def test_unbounded_queue_never_sheds(self, fitted):
        model, q = fitted
        with PredictionService(model, batch_size=4) as svc:
            svc.predict_many(q)
            stats = svc.stats()
        assert stats["shed"] == 0
        assert "shed" in stats  # the key is part of the stats contract


class TestCloseDrainsDeterministically:
    def test_close_serves_everything_already_queued(self, fitted):
        """Regression: close() must resolve every admitted Future."""
        model, q = fitted
        slow = _SlowModel(model, 0.01)
        expected = model.predict(q)
        svc = PredictionService(
            slow, batch_size=4, max_delay_ms=0.0, n_workers=1, cache_size=0,
        )
        futures = [svc.submit(row) for row in q]
        svc.close()  # drain=True: the queue is served, not abandoned
        assert all(f.done() for f in futures)
        got = np.array([f.result(timeout=0) for f in futures])
        assert np.array_equal(got, expected)

    def test_close_without_drain_cancels_queued(self, fitted):
        model, q = fitted
        slow = _SlowModel(model, 0.05)
        svc = PredictionService(
            slow, batch_size=2, max_delay_ms=0.0, n_workers=1, cache_size=0,
        )
        futures = [svc.submit(row) for row in q[:12]]
        svc.close(drain=False)
        # deterministic: every future resolved one way or the other, now
        assert all(f.done() for f in futures)
        outcomes = []
        for f in futures:
            if f.cancelled():
                outcomes.append("cancelled")
            elif f.exception(timeout=0) is not None:
                outcomes.append("error")
            else:
                outcomes.append("served")
        assert "cancelled" in outcomes  # the queue tail was cut loose
        stats = svc.stats()
        assert stats["served"] == outcomes.count("served")
