"""End-to-end coverage of the repro-serve CLI (save/load/predict/serve)."""

import io
import json

import numpy as np
import pytest

from repro.data import make_blobs, write_csv
from repro.serve import load_model
from repro.serve.cli import main


@pytest.fixture()
def train_csv(tmp_path):
    x = make_blobs(120, 5, 3, rng=2)[0]
    path = str(tmp_path / "train.csv")
    write_csv(path, x)
    return path, x


def _save(tmp_path, train_csv, model="popcorn", extra=()):
    path, _ = train_csv
    out = str(tmp_path / "model.npz")
    rc = main(
        ["save", "--model", model, "-k", "3", "-i", path, "-o", out,
         "--backend", "host", *extra]
    )
    assert rc == 0
    return out


class TestSaveLoad:
    def test_save_then_load_prints_metadata(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        assert main(["load", out]) == 0
        text = capsys.readouterr().out
        assert "popcorn" in text
        assert "polynomial" in text
        assert "array labels" in text

    @pytest.mark.parametrize("model", ["nystrom", "lloyd", "onthefly"])
    def test_other_estimators_save(self, tmp_path, train_csv, model, capsys):
        out = _save(tmp_path, train_csv, model=model)
        loaded = load_model(out)
        assert hasattr(loaded, "labels_")
        capsys.readouterr()

    def test_synthetic_training_without_input(self, tmp_path, capsys):
        out = str(tmp_path / "m.npz")
        assert main(["save", "-k", "4", "-n", "200", "-d", "6", "-o", out,
                     "--backend", "host"]) == 0
        assert "n=200 d=6" in capsys.readouterr().out

    def test_bad_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "junk.npz"
        bad.write_bytes(b"nonsense")
        assert main(["load", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestPredictOneShot:
    def test_predict_matches_in_memory(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        qpath = str(tmp_path / "queries.csv")
        write_csv(qpath, x[:15])
        assert main(["predict", out, "--input", qpath]) == 0
        printed = [int(t) for t in capsys.readouterr().out.split()]
        expected = load_model(out).predict(np.asarray(x[:15], dtype=np.float64))
        assert printed == list(expected)

    def test_predict_writes_output_file(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        qpath = str(tmp_path / "queries.csv")
        write_csv(qpath, x[:8])
        labels_path = str(tmp_path / "labels.txt")
        assert main(
            ["predict", out, "--input", qpath, "--output", labels_path, "--stats"]
        ) == 0
        assert np.loadtxt(labels_path).shape == (8,)
        err = capsys.readouterr().err
        assert "latency_mean_ms" in err

    def test_predict_jsonl_input(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        qpath = tmp_path / "q.jsonl"
        with open(qpath, "w") as fh:
            for row in x[:4]:
                fh.write(json.dumps({"x": [float(v) for v in row]}) + "\n")
        assert main(["predict", out, "--input", str(qpath)]) == 0
        assert len(capsys.readouterr().out.split()) == 4

    def test_missing_query_file_exits_2(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        assert main(["predict", out, "--input", "/nonexistent.csv"]) == 2
        assert "no such" in capsys.readouterr().err


class TestServeLoop:
    def test_stdin_jsonl_roundtrip(self, tmp_path, train_csv, capsys, monkeypatch):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        lines = []
        for i, row in enumerate(x[:6]):
            payload = [float(v) for v in row]
            lines.append(
                json.dumps({"id": f"q{i}", "x": payload})
                if i % 2 == 0
                else json.dumps(payload)
            )
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", out, "--batch-size", "4"]) == 0
        captured = capsys.readouterr()
        results = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(results) == 6
        expected = load_model(out).predict(np.asarray(x[:6], dtype=np.float64))
        by_id = {r["id"]: r["label"] for r in results}
        assert by_id["q0"] == expected[0]
        assert by_id[2] == expected[1]  # bare arrays are keyed by line number
        stats = json.loads(captured.err.strip().splitlines()[-1])["stats"]
        assert stats["requests"] == 6

    def test_ragged_query_errors_without_hanging(self, tmp_path, train_csv, capsys,
                                                 monkeypatch):
        """A wrong-dimension query in a fused batch must come back as an
        error line — not kill the worker or hang the loop."""
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        lines = [
            json.dumps({"id": "good", "x": [float(v) for v in x[0]]}),
            json.dumps({"id": "ragged", "x": [0.0] * 9}),
            json.dumps({"id": "good2", "x": [float(v) for v in x[1]]}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", out, "--batch-size", "8"]) == 0
        results = {
            r["id"]: r
            for r in map(json.loads, capsys.readouterr().out.strip().splitlines())
        }
        assert "label" in results["good"] and "label" in results["good2"]
        assert "error" in results["ragged"]

    def test_bad_lines_reported_not_fatal(self, tmp_path, train_csv, capsys,
                                          monkeypatch):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()  # drop the save banner
        _, x = train_csv
        good = json.dumps([float(v) for v in x[0]])
        monkeypatch.setattr("sys.stdin", io.StringIO("not json\n" + good + "\n"))
        assert main(["serve", out]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 1
        assert "error" in captured.err


class TestStatsCommand:
    def test_stats_table_synthetic_queries(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()
        assert main(["stats", out, "--queries", "32"]) == 0
        text = capsys.readouterr().out
        assert "requests" in text and "32" in text

    def test_stats_json_with_query_file(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        path, _ = train_csv
        capsys.readouterr()
        assert main(["stats", out, "--input", path, "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["served"] == 120
        assert stats["model_version"] == 1

    def test_stats_prom_exposition(self, tmp_path, train_csv, capsys):
        out = _save(tmp_path, train_csv)
        capsys.readouterr()
        assert main(["stats", out, "--queries", "16", "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 16.0" in text

    def test_stats_trace_out_writes_combined_trace(self, tmp_path, train_csv,
                                                   capsys):
        from repro.obs import trace

        out = _save(tmp_path, train_csv)
        trace_path = tmp_path / "trace.json"
        was_enabled = trace.enabled
        try:
            assert main(["stats", out, "--queries", "8",
                         "--trace-out", str(trace_path)]) == 0
        finally:
            trace.enabled = was_enabled
        events = json.loads(trace_path.read_text())
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "serve.batch" in names
        assert "serve.enqueue" in names
        procs = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert {"wall-clock spans", "serve-profiler"} <= procs
        assert "combined trace written" in capsys.readouterr().err
