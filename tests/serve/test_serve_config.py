"""ServeConfig / ServeResult: the unified serving configuration surface."""

import numpy as np
import pytest

from repro import PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.serve import PredictionService, ServeConfig, ServeResult


@pytest.fixture(scope="module")
def fitted():
    x = make_blobs(60, 4, 3, rng=5)[0].astype(np.float64)
    model = PopcornKernelKMeans(
        3, dtype=np.float64, backend="host", max_iter=5, seed=0
    ).fit(x)
    q = np.random.default_rng(9).standard_normal((17, 4))
    return model, q


class TestServeConfig:
    def test_defaults(self):
        cfg = ServeConfig()
        assert cfg.batch_size == 32
        assert cfg.max_delay_ms == 2.0
        assert cfg.n_workers == 1
        assert cfg.queue_bound is None
        assert cfg.cache_size == 1024
        assert cfg.chunk_rows is None
        assert repr(cfg) == "ServeConfig()"

    def test_estimator_params_surface(self):
        cfg = ServeConfig(batch_size=8, queue_bound=64)
        assert cfg.get_params()["queue_bound"] == 64
        assert repr(cfg) == "ServeConfig(batch_size=8, queue_bound=64)"
        other = cfg.clone()
        other.set_params(batch_size=16)
        assert (cfg.batch_size, other.batch_size) == (8, 16)

    @pytest.mark.parametrize(
        "bad",
        [
            {"batch_size": 0},
            {"n_workers": 0},
            {"queue_bound": 0},
            {"cache_size": -1},
            {"max_delay_ms": -0.5},
            {"latency_window": 0},
            {"batch_size": True},
            {"batch_size": 2.5},
            {"devices": 0},
            {"nonsense_knob": 1},
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises((ConfigError, TypeError)):
            ServeConfig(**bad)

    def test_integral_float_accepted(self):
        assert ServeConfig(batch_size=8.0).batch_size == 8

    def test_tile_rows_alias_deprecated(self):
        with pytest.warns(DeprecationWarning, match="tile_rows"):
            cfg = ServeConfig(tile_rows=16)
        assert cfg.chunk_rows == 16
        with pytest.raises(ConfigError):
            ServeConfig(tile_rows=16, chunk_rows=8)

    def test_max_delay_s_and_predict_kwargs(self):
        cfg = ServeConfig(max_delay_ms=5.0, chunk_rows=4, n_threads=2)
        assert cfg.max_delay_s == pytest.approx(0.005)
        assert cfg.predict_kwargs() == {
            "chunk_rows": 4, "chunk_cols": None, "n_threads": 2,
        }

    def test_coerce_contract(self):
        cfg = ServeConfig(batch_size=8)
        out = ServeConfig.coerce(cfg, {}, owner="X")
        assert out is not cfg and out.batch_size == 8  # service owns a copy
        assert ServeConfig.coerce(None, {"batch_size": 4}, owner="X").batch_size == 4
        with pytest.raises(ConfigError, match="both config="):
            ServeConfig.coerce(cfg, {"batch_size": 4}, owner="X")
        with pytest.raises(ConfigError, match="ServeConfig"):
            ServeConfig.coerce({"batch_size": 4}, {}, owner="X")

    def test_service_accepts_config_object(self, fitted):
        model, q = fitted
        cfg = ServeConfig(batch_size=4, max_delay_ms=1.0, cache_size=0)
        with PredictionService(model, cfg) as svc:
            assert svc.batch_size == 4
            assert np.array_equal(svc.predict_many(q), model.predict(q))
        # the service cloned the config: mutating ours after the fact is inert
        cfg.set_params(batch_size=99)
        assert svc.config.batch_size == 4

    def test_service_rejects_config_plus_kwargs(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigError, match="both config="):
            PredictionService(model, ServeConfig(), batch_size=4)


class TestServeResult:
    def test_int_compatibility(self):
        r = ServeResult(2, model_version=3, cache_hit=True, latency_s=0.004)
        assert r == 2 and int(r) == 2 and r + 1 == 3
        assert np.arange(10)[r] == 2  # usable as an index
        assert r.label == 2

    def test_metadata_and_dict(self):
        r = ServeResult(1, model_version=5, coalesced=True, latency_s=0.25)
        assert r.latency_ms == pytest.approx(250.0)
        assert r.to_dict() == {
            "label": 1, "model_version": 5, "cache_hit": False,
            "coalesced": True, "latency_ms": pytest.approx(250.0),
        }
        assert "model_version=5" in repr(r)

    def test_old_return_contract_still_served(self, fitted):
        """The deprecation shim: submit/predict answer int-compatible results."""
        model, q = fitted
        expected = model.predict(q)
        with PredictionService(model, batch_size=4, max_delay_ms=1.0) as svc:
            res = svc.predict(q[0])
            assert res == expected[0]  # old callers compare the bare label
            assert isinstance(res, ServeResult)
            assert res.model_version == 1 and not res.cache_hit
            many = svc.predict_many(q)
            assert many.dtype == np.int32  # array surface unchanged
            detailed = svc.predict_many(q, details=True)
        assert all(isinstance(r, ServeResult) for r in detailed)
        assert np.array_equal(np.array([int(r) for r in detailed]), expected)
        assert any(r.cache_hit for r in detailed)  # second pass hit the LRU
