"""AsyncPredictionServer: admission control, coalescing, workers, hot swap.

The determinism tests lean on asyncio being single-threaded: a
synchronous burst of ``submit_nowait`` calls enqueues every request
before the batcher task gets a turn, so coalescing and shedding counts
are exact, not statistical.
"""

import asyncio
import time

import numpy as np
import pytest

from repro import PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import ConfigError, Overloaded
from repro.serve import (
    AsyncPredictionServer,
    ModelRefresher,
    ServeConfig,
    ServeResult,
    load_model,
    save_model,
)
from repro.serve.frontdoor import open_loop_load
from repro.serve.worker import ShardWorkerError


@pytest.fixture(scope="module")
def fitted():
    x = make_blobs(80, 4, 3, rng=5)[0].astype(np.float64)
    model = PopcornKernelKMeans(
        3, dtype=np.float64, backend="host", max_iter=6, seed=0
    ).fit(x)
    q = np.random.default_rng(9).standard_normal((40, 4))
    return model, q


class _SlowModel:
    """Wraps a fitted model, charging a fixed sleep per predict batch."""

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self.labels_ = inner.labels_

    def predict(self, rows, **kw):
        time.sleep(self._delay_s)
        return self._inner.predict(rows, **kw)


class _PoisonModel:
    """Raises on any row whose first feature exceeds the marker."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.labels_ = inner.labels_

    def predict(self, rows, **kw):
        if np.any(rows[:, 0] > 1e5):
            raise ValueError("poisoned row")
        return self._inner.predict(rows, **kw)


class TestCorrectness:
    def test_served_labels_match_direct_predict(self, fitted):
        model, q = fitted
        expected = model.predict(q)

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=8, max_delay_ms=1.0
            ) as server:
                return await server.predict_many(q)

        assert np.array_equal(asyncio.run(go()), expected)

    def test_submit_and_predict_return_serve_results(self, fitted):
        model, q = fitted
        expected = model.predict(q)

        async def go():
            async with AsyncPredictionServer(model, batch_size=4) as server:
                one = await server.submit(q[0])
                two = await server.predict(q[1])
                return one, two

        one, two = asyncio.run(go())
        assert isinstance(one, ServeResult) and isinstance(two, ServeResult)
        assert (one, two) == (expected[0], expected[1])
        assert one.model_version == 1 and not one.coalesced

    def test_cache_answers_repeats(self, fitted):
        model, q = fitted

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=8, cache_size=64
            ) as server:
                first = await server.predict_many(q[:8], details=True)
                again = await server.predict_many(q[:8], details=True)
                return first, again, server.stats()

        first, again, stats = asyncio.run(go())
        assert not any(r.cache_hit for r in first)
        assert all(r.cache_hit for r in again)
        assert stats["cache_hits"] == 8
        assert stats["backend_rows"] == 8  # the repeats never hit a worker

    def test_lifecycle_guards(self, fitted):
        model, _ = fitted
        server = AsyncPredictionServer(model)
        with pytest.raises(ConfigError, match="not started"):
            server.submit_nowait(np.zeros(4))

        async def go():
            async with server:
                with pytest.raises(ConfigError, match="1-D"):
                    server.submit_nowait(np.zeros((2, 4)))
            with pytest.raises(ConfigError, match="closed"):
                server.submit_nowait(np.zeros(4))

        asyncio.run(go())


class TestCoalescing:
    def test_burst_of_duplicates_reaches_backend_once(self, fitted):
        """The tentpole contract: u unique rows x r repeats -> u backend rows."""
        model, q = fitted
        u, r = 10, 4
        expected = model.predict(q[:u])

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=u, max_delay_ms=1.0, cache_size=0
            ) as server:
                futures = [
                    server.submit_nowait(q[i])
                    for _ in range(r)
                    for i in range(u)
                ]
                results = await asyncio.gather(*futures)
                return results, server.stats()

        results, stats = asyncio.run(go())
        assert stats["backend_rows"] == u  # coalescing demonstrably shrank
        assert stats["batches"] == 1  # ... the backend work to one batch
        assert stats["coalesced"] == u * (r - 1)
        assert stats["served"] == u * r
        got = np.array([int(x) for x in results], dtype=np.int32)
        assert np.array_equal(got, np.tile(expected, r))
        # provenance: the queue occupant is not flagged, its riders are
        flags = [x.coalesced for x in results]
        assert flags[:u] == [False] * u
        assert all(flags[u:])

    def test_duplicates_do_not_consume_queue_slots(self, fitted):
        model, q = fitted

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=4, queue_bound=2, cache_size=0
            ) as server:
                futures = [server.submit_nowait(q[0]) for _ in range(10)]
                futures += [server.submit_nowait(q[1])]  # 2nd slot still free
                return await asyncio.gather(*futures), server.stats()

        results, stats = asyncio.run(go())
        assert stats["shed"] == 0
        assert len(results) == 11


class TestAdmissionControl:
    def test_burst_sheds_exactly_beyond_the_bound(self, fitted):
        model, q = fitted
        bound, offered = 6, 25

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=bound, queue_bound=bound, cache_size=0
            ) as server:
                accepted, shed = [], 0
                for i in range(offered):
                    try:
                        accepted.append(server.submit_nowait(q[i]))
                    except Overloaded:
                        shed += 1
                results = await asyncio.gather(*accepted)
                return shed, results, server.stats()

        shed, results, stats = asyncio.run(go())
        assert shed == offered - bound  # exact, not approximate
        assert stats["shed"] == shed
        assert stats["served"] == len(results) == bound

    def test_rejections_never_corrupt_the_stats(self, fitted):
        model, q = fitted

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=4, queue_bound=4, cache_size=0
            ) as server:
                futures = []
                for _ in range(3):  # three bursts with drains between them
                    for i in range(12):
                        try:
                            futures.append(server.submit_nowait(q[i]))
                        except Overloaded:
                            pass
                    await asyncio.gather(*futures[-1:])
                await asyncio.gather(*futures)
                return server.stats()

        stats = asyncio.run(go())
        assert stats["requests"] == 36
        assert (
            stats["requests"]
            == stats["served"] + stats["shed"] + stats["errors"]
        )
        assert stats["errors"] == 0
        assert stats["queue_peak"] <= 4


class TestOpenLoopLoad:
    def test_shed_rate_is_monotone_in_offered_load(self, fitted):
        """The load-generator harness: more offered qps, never less shed."""
        model, _ = fitted
        # service rate is pinned at 200 qps (4-row batches, 20 ms each), so
        # the three offered loads sit in three regimes: under capacity,
        # moderately over, and a near-instant burst
        slow = _SlowModel(model, delay_s=0.02)
        queries = np.random.default_rng(11).standard_normal((60, 4))

        async def drive(qps):
            async with AsyncPredictionServer(
                slow, batch_size=4, max_delay_ms=0.5, n_workers=1,
                queue_bound=4, cache_size=0, processes=False,
            ) as server:
                report = await open_loop_load(server, queries, qps)
                stats = server.stats()
            return report, stats

        async def go():
            return [await drive(qps) for qps in (50.0, 300.0, 20000.0)]

        outcomes = asyncio.run(go())
        rates = [rep.shed_rate for rep, _ in outcomes]
        assert rates == sorted(rates)  # monotone non-decreasing
        assert rates[0] < 0.5  # gentle load mostly admitted
        assert rates[-1] > 0.0  # overload actually sheds
        for rep, stats in outcomes:
            # rejected requests never corrupt the books, on either ledger
            assert rep.requests == rep.accepted + rep.shed
            assert (
                stats["requests"]
                == stats["served"] + stats["shed"] + stats["errors"]
            )
            assert stats["errors"] == 0

    def test_report_latencies_and_validation(self, fitted):
        model, q = fitted

        async def go():
            async with AsyncPredictionServer(
                model, batch_size=8, queue_bound=256, cache_size=0
            ) as server:
                with pytest.raises(ConfigError):
                    await open_loop_load(server, q, qps=0)
                return await open_loop_load(server, q, qps=5000.0)

        report = asyncio.run(go())
        assert report.accepted == report.requests == q.shape[0]
        assert report.shed == 0 and report.errors == 0
        assert 0.0 < report.p50_ms <= report.p99_ms <= report.max_ms
        assert set(report.to_dict()) >= {"offered_qps", "shed_rate", "p99_ms"}


class TestErrorsAndClose:
    def test_poisoned_row_is_isolated_from_batch_mates(self, fitted):
        model, q = fitted
        poisoned = q[0].copy()
        poisoned[0] = 1e6

        async def go():
            async with AsyncPredictionServer(
                _PoisonModel(model), batch_size=8, cache_size=0,
                processes=False,
            ) as server:
                futures = [server.submit_nowait(row) for row in q[:5]]
                bad = server.submit_nowait(poisoned)
                good = await asyncio.gather(*futures)
                with pytest.raises(ShardWorkerError, match="poisoned"):
                    await bad
                return good, server.stats()

        good, stats = asyncio.run(go())
        assert np.array_equal(
            np.array([int(g) for g in good]), model.predict(q[:5])
        )
        assert stats["errors"] == 1
        assert (
            stats["requests"]
            == stats["served"] + stats["shed"] + stats["errors"]
        )

    def test_close_drains_admitted_requests(self, fitted):
        model, q = fitted

        async def go():
            server = await AsyncPredictionServer(
                model, batch_size=4, cache_size=0
            ).start()
            futures = [server.submit_nowait(row) for row in q[:10]]
            await server.close()  # drain=True: everything admitted answers
            return await asyncio.gather(*futures), server.stats()

        results, stats = asyncio.run(go())
        assert len(results) == 10 and stats["served"] == 10
        assert stats["cancelled"] == 0

    def test_close_without_drain_cancels_queued(self, fitted):
        model, q = fitted
        slow = _SlowModel(model, delay_s=0.05)

        async def go():
            server = await AsyncPredictionServer(
                slow, batch_size=2, max_delay_ms=0.0, cache_size=0,
                processes=False,
            ).start()
            futures = [server.submit_nowait(row) for row in q[:12]]
            await asyncio.sleep(0.01)  # let the first batch dispatch
            await server.close(drain=False)
            done = await asyncio.gather(*futures, return_exceptions=True)
            return done, server.stats()

        done, stats = asyncio.run(go())
        cancelled = [r for r in done if isinstance(r, asyncio.CancelledError)]
        served = [r for r in done if isinstance(r, ServeResult)]
        assert stats["cancelled"] == len(cancelled) > 0
        assert stats["served"] == len(served)
        assert (
            stats["requests"]
            == stats["served"] + stats["shed"] + stats["errors"]
            + stats["cancelled"]
        )

    def test_close_idempotent(self, fitted):
        model, _ = fitted

        async def go():
            server = await AsyncPredictionServer(model).start()
            await server.close()
            await server.close()

        asyncio.run(go())


class TestHotSwap:
    def _two_artifacts(self, tmp_path):
        xa = make_blobs(60, 4, 3, rng=0)[0].astype(np.float64)
        xb = make_blobs(60, 4, 3, rng=1)[0].astype(np.float64)
        a = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", max_iter=5, seed=0
        ).fit(xa)
        b = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", max_iter=5, seed=1
        ).fit(xb)
        return (
            save_model(a, str(tmp_path / "a.npz")),
            save_model(b, str(tmp_path / "b.npz")),
        )

    def test_swap_under_async_load_drops_nothing(self, fitted, tmp_path, lockdep):
        """Mirror of the thread-service hammer: readers + swapper, zero drops."""
        path_a, path_b = self._two_artifacts(tmp_path)
        q = np.random.default_rng(3).standard_normal((400, 4))
        n_swaps = 12

        async def go():
            async with AsyncPredictionServer(
                path_a, batch_size=16, max_delay_ms=0.5, cache_size=64,
                processes=False,
            ) as server:
                async def swapper():
                    for i in range(n_swaps):
                        await server.aswap_artifact(
                            path_b if i % 2 == 0 else path_a
                        )
                        await asyncio.sleep(0.002)

                swap_task = asyncio.create_task(swapper())
                details = []
                for i in range(0, 400, 40):
                    details += await server.predict_many(
                        q[i:i + 40], details=True
                    )
                    await asyncio.sleep(0)
                await swap_task
                return details, server.stats()

        details, stats = asyncio.run(go())
        assert len(details) == 400  # zero dropped requests across swaps
        assert stats["served"] == 400
        assert stats["errors"] == 0
        assert stats["model_swaps"] == n_swaps
        assert stats["model_version"] == 1 + n_swaps
        # every answer is a valid label stamped with a version that served
        assert all(0 <= int(r) < 3 for r in details)
        assert all(1 <= r.model_version <= 1 + n_swaps for r in details)

    def test_swap_invalidates_the_cache(self, fitted, tmp_path):
        path_a, path_b = self._two_artifacts(tmp_path)
        q = np.random.default_rng(4).standard_normal((8, 4))

        async def go():
            async with AsyncPredictionServer(
                path_a, batch_size=8, cache_size=64, processes=False
            ) as server:
                await server.predict_many(q)
                version = await server.aswap_artifact(path_b)
                after = await server.predict_many(q, details=True)
                return version, after

        version, after = asyncio.run(go())
        assert version == 2
        assert not any(r.cache_hit for r in after)  # v1 cache died with v1
        assert all(r.model_version == 2 for r in after)

    def test_refresher_publishes_into_the_front_door(self, tmp_path):
        x = make_blobs(60, 4, 3, rng=0)[0].astype(np.float64)
        est = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", seed=0, batch_size=20
        )
        est.partial_fit(x)
        path = save_model(est, str(tmp_path / "online.npz"))

        async def go():
            async with AsyncPredictionServer(
                path, batch_size=8, cache_size=0, processes=False
            ) as server:
                ref = ModelRefresher(server, str(tmp_path / "pub"))
                ref.observe(x[30:])
                published = await asyncio.get_running_loop().run_in_executor(
                    None, ref.refresh
                )
                res = await server.predict_many(x[:6], details=True)
                return published, res, server.stats()

        published, res, stats = asyncio.run(go())
        assert published.endswith("-v0001.npz")
        assert stats["model_version"] == 2
        assert all(r.model_version == 2 for r in res)
        # the front door now serves exactly what the artifact holds
        fresh = load_model(published)
        assert np.array_equal(
            np.array([int(r) for r in res]), fresh.predict(x[:6])
        )


class TestProcessWorkers:
    def test_process_pool_serves_and_swaps(self, fitted, tmp_path):
        model, q = fitted
        path = save_model(model, str(tmp_path / "m.npz"))
        x2 = make_blobs(60, 4, 3, rng=2)[0].astype(np.float64)
        other = PopcornKernelKMeans(
            3, dtype=np.float64, backend="host", max_iter=5, seed=2
        ).fit(x2)
        path2 = save_model(other, str(tmp_path / "m2.npz"))
        expected = model.predict(q)

        async def go():
            cfg = ServeConfig(batch_size=8, n_workers=2, cache_size=0)
            async with AsyncPredictionServer(path, cfg) as server:
                assert server.processes  # path source defaults to processes
                got = await server.predict_many(q)
                version = await server.aswap_artifact(path2)
                after = await server.predict_many(q[:8], details=True)
                return got, version, after, server.stats()

        got, version, after, stats = asyncio.run(go())
        assert np.array_equal(got, expected)
        assert version == 2
        assert all(r.model_version == 2 for r in after)
        assert np.array_equal(
            np.array([int(r) for r in after]), other.predict(q[:8])
        )
        assert stats["workers"] == 2
        assert stats["errors"] == 0

    def test_model_object_source_cannot_use_processes(self, fitted):
        model, _ = fitted

        async def go():
            await AsyncPredictionServer(model, processes=True).start()

        with pytest.raises(ConfigError):
            asyncio.run(go())
