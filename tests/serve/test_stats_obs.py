"""Stats edge cases, the bounded latency window, and stats-vs-swap races."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimators import make_estimator
from repro.serve import PredictionService


def _fitted(seed=0, n=80, d=6, k=3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    return make_estimator(
        "popcorn", n_clusters=k, backend="host", kernel="linear",
        dtype=np.float64, max_iter=3, seed=seed,
    ).fit(x)


class TestPercentileEdges:
    def test_empty_window_reports_zero_not_nan(self):
        assert PredictionService._percentile([], 50) == 0.0
        assert PredictionService._percentile([], 95) == 0.0

    def test_single_sample_reports_that_sample_for_every_q(self):
        for q in (0, 50, 95, 100):
            assert PredictionService._percentile([0.25], q) == 0.25

    def test_multi_sample_matches_numpy(self):
        vals = [0.1, 0.2, 0.3, 0.4]
        assert PredictionService._percentile(vals, 50) == pytest.approx(
            float(np.percentile(vals, 50))
        )

    def test_fresh_service_stats_all_finite(self):
        with PredictionService(_fitted(), n_workers=1) as svc:
            stats = svc.stats()
        assert stats["requests"] == 0
        assert stats["latency_p50_ms"] == 0.0
        assert stats["latency_p95_ms"] == 0.0
        assert stats["queries_per_s"] == 0.0
        assert all(np.isfinite(v) for v in stats.values() if isinstance(v, float))


class TestBoundedWindow:
    def test_latency_window_validated(self):
        with pytest.raises(ConfigError):
            PredictionService(_fitted(), latency_window=0)

    def test_window_bounds_memory_but_lifetime_totals_stay_exact(self):
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((40, 6))
        with PredictionService(
            _fitted(), n_workers=1, batch_size=4, max_delay_ms=0.0,
            cache_size=0, latency_window=8,
        ) as svc:
            svc.predict_many(queries)
            stats = svc.stats()
            assert len(svc._latencies) <= 8
            assert len(svc._batch_sizes) <= 8
        # lifetime counters are not clipped by the rolling window
        assert stats["requests"] == 40
        assert stats["served"] == 40
        assert stats["batches"] >= 40 // 4
        assert stats["latency_p95_ms"] > 0.0

    def test_served_counts_cache_hits_too(self):
        row = np.arange(6, dtype=np.float64)
        with PredictionService(_fitted(), n_workers=1, latency_window=2) as svc:
            first = svc.predict(row)
            for _ in range(5):
                assert svc.predict(row) == first
            stats = svc.stats()
        assert stats["served"] == 6
        assert stats["cache_hits"] == 5


class TestStatsSwapRaces:
    def test_hammer_stats_and_submits_during_swaps(self, lockdep):
        """stats() must never tear, raise, or go backwards while
        swap_model() and submissions run concurrently."""
        model_a = _fitted(seed=0)
        model_b = _fitted(seed=1)
        errors = []
        stop = threading.Event()
        rng = np.random.default_rng(2)
        queries = rng.standard_normal((400, 6))

        with PredictionService(
            model_a, n_workers=2, batch_size=8, max_delay_ms=0.2, cache_size=64,
        ) as svc:

            def hammer_stats():
                last_requests = 0
                last_version = 1
                try:
                    while not stop.is_set():
                        s = svc.stats()
                        # monotone lifetime counters, no torn reads
                        assert s["requests"] >= last_requests
                        assert s["served"] <= s["requests"]
                        assert s["cache_hits"] <= s["served"]
                        assert s["model_version"] >= last_version
                        assert s["model_version"] == s["model_swaps"] + 1
                        last_requests = s["requests"]
                        last_version = s["model_version"]
                        svc.stats(format="prom")  # the prom face too
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def hammer_swaps():
                try:
                    for i in range(20):
                        svc.swap_model(model_b if i % 2 == 0 else model_a)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            readers = [threading.Thread(target=hammer_stats) for _ in range(3)]
            swapper = threading.Thread(target=hammer_swaps)
            for th in readers:
                th.start()
            swapper.start()
            labels = svc.predict_many(queries)
            swapper.join()
            stop.set()
            for th in readers:
                th.join()
            final = svc.stats()

        assert not errors, errors
        assert labels.shape == (400,)
        assert final["served"] == 400
        assert final["model_swaps"] == 20
        assert final["model_version"] == 21

    def test_swap_returns_new_version(self):
        with PredictionService(_fitted(seed=0), n_workers=1) as svc:
            assert svc.swap_model(_fitted(seed=1)) == 2
            assert svc.swap_model(_fitted(seed=2)) == 3
