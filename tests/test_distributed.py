"""Tests for the distributed Kernel K-means extension."""

import numpy as np
import pytest

from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans
from repro.distributed import (
    DistributedPopcornKernelKMeans,
    INFINIBAND,
    NVLINK,
    allgather_cost,
    allreduce_cost,
    block_of,
    model_distributed_popcorn,
    row_blocks,
)
from repro.errors import ConfigError
from repro.kernels import GaussianKernel


class TestPartition:
    def test_blocks_cover_exactly(self):
        blocks = row_blocks(10, 3)
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_even_split(self):
        assert row_blocks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_single_device(self):
        assert row_blocks(7, 1) == [(0, 7)]

    def test_sizes_differ_by_at_most_one(self):
        for n, g in [(100, 7), (13, 5), (6, 6)]:
            sizes = [hi - lo for lo, hi in row_blocks(n, g)]
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == n

    def test_more_devices_than_rows(self):
        with pytest.raises(ConfigError):
            row_blocks(3, 5)

    def test_block_of(self):
        assert block_of(10, 3, 0) == 0
        assert block_of(10, 3, 4) == 1
        assert block_of(10, 3, 9) == 2

    def test_block_of_out_of_range(self):
        with pytest.raises(ConfigError):
            block_of(10, 3, 10)


class TestCommCosts:
    def test_single_rank_free(self):
        assert allgather_cost(NVLINK, 1, 1e9).time_s == 0.0
        assert allreduce_cost(NVLINK, 1, 1e9).time_s == 0.0

    def test_allgather_scales_with_bytes(self):
        t1 = allgather_cost(NVLINK, 4, 1e6).time_s
        t2 = allgather_cost(NVLINK, 4, 1e9).time_s
        assert t2 > t1

    def test_allreduce_about_twice_allgather(self):
        b = 1e9
        ag = allgather_cost(NVLINK, 8, b).time_s
        ar = allreduce_cost(NVLINK, 8, b).time_s
        assert 1.5 < ar / ag < 2.5

    def test_infiniband_slower_than_nvlink(self):
        assert allgather_cost(INFINIBAND, 4, 1e9).time_s > allgather_cost(NVLINK, 4, 1e9).time_s

    def test_invalid_rank_count(self):
        with pytest.raises(ConfigError):
            allgather_cost(NVLINK, 0, 100)


class TestDistributedEquivalence:
    @pytest.mark.parametrize("g", [1, 2, 3, 5])
    def test_matches_single_device(self, rng, g):
        """SPMD run == single-device Popcorn, any device count."""
        n, d, k = 60, 5, 4
        x = rng.standard_normal((n, d)).astype(np.float64)
        init = random_labels(n, k, rng)
        single = PopcornKernelKMeans(
            k, dtype=np.float64, max_iter=10, check_convergence=False
        ).fit(x, init_labels=init)
        dist = DistributedPopcornKernelKMeans(
            k, n_devices=g, dtype=np.float64, max_iter=10, check_convergence=False
        ).fit(x, init_labels=init)
        assert np.array_equal(single.labels_, dist.labels_)
        assert np.allclose(single.objective_history_, dist.objective_history_, rtol=1e-8)

    def test_gaussian_kernel_distributed(self, rng):
        n, k = 45, 3
        x = rng.standard_normal((n, 4)).astype(np.float64)
        init = random_labels(n, k, rng)
        kern = GaussianKernel(gamma=0.6)
        single = PopcornKernelKMeans(k, kernel=kern, dtype=np.float64, max_iter=8).fit(
            x, init_labels=init
        )
        dist = DistributedPopcornKernelKMeans(
            k, n_devices=4, kernel=kern, dtype=np.float64, max_iter=8
        ).fit(x, init_labels=init)
        assert np.array_equal(single.labels_, dist.labels_)

    def test_profilers_and_makespan(self, rng):
        x = rng.standard_normal((40, 4)).astype(np.float32)
        m = DistributedPopcornKernelKMeans(3, n_devices=2, max_iter=4, seed=0).fit(x)
        assert len(m.device_profilers_) == 2
        assert m.makespan_s_ > 0
        assert 0 < m.parallel_efficiency_ <= 1.0
        assert m.comm_profiler_.count_of("comm.allreduce") == m.n_iter_

    def test_validation(self, rng):
        x = rng.standard_normal((10, 2)).astype(np.float32)
        with pytest.raises(ConfigError):
            DistributedPopcornKernelKMeans(20).fit(x)  # k > n
        with pytest.raises(ConfigError):
            DistributedPopcornKernelKMeans(2, n_devices=0)


class TestDistributedModel:
    def test_strong_scaling_reduces_makespan(self):
        n, d, k = 200000, 780, 100
        t1 = model_distributed_popcorn(n, d, k, 1)["makespan_s"]
        t4 = model_distributed_popcorn(n, d, k, 4)["makespan_s"]
        t8 = model_distributed_popcorn(n, d, k, 8)["makespan_s"]
        assert t4 < t1
        assert t8 < t4

    def test_efficiency_degrades_with_devices(self):
        n, d, k = 100000, 100, 50
        e2 = model_distributed_popcorn(n, d, k, 2)["efficiency"]
        e16 = model_distributed_popcorn(n, d, k, 16)["efficiency"]
        assert e16 < e2 <= 1.1

    def test_comm_grows_with_devices_over_ib(self):
        n, d, k = 100000, 100, 50
        c2 = model_distributed_popcorn(n, d, k, 2, comm=INFINIBAND)["comm_s"]
        c8 = model_distributed_popcorn(n, d, k, 8, comm=INFINIBAND)["comm_s"]
        assert c8 > c2

    def test_memory_motivation(self):
        """The future-work motivation: 8 GPUs partition a K that cannot
        fit on one (n=200k -> 160 GB in FP32 > 80 GB)."""
        n = 200000
        full_k_gb = 4.0 * n * n / 1e9
        assert full_k_gb > 80.0
        assert full_k_gb / 8 < 80.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            model_distributed_popcorn(0, 10, 2, 2)
