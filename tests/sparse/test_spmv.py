"""Unit tests for SpMV."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import from_dense, random_csr, selection_matrix, spmv


class TestSpMVCorrectness:
    @pytest.mark.parametrize("density", [0.0, 0.2, 0.7, 1.0])
    def test_matches_scipy(self, rng, density):
        a = random_csr(15, 11, density, rng=rng, dtype=np.float64)
        x = rng.standard_normal(11)
        assert np.allclose(spmv(a, x), a.to_scipy() @ x, atol=1e-12)

    def test_empty_rows(self, rng):
        dense = np.zeros((4, 3))
        dense[1] = [1, -1, 2]
        a = from_dense(dense)
        x = rng.standard_normal(3)
        out = spmv(a, x)
        assert out[0] == 0 and out[2] == 0 and out[3] == 0
        assert out[1] == pytest.approx(dense[1] @ x, rel=1e-5)

    def test_alpha(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        x = rng.standard_normal(6)
        assert np.allclose(spmv(a, x, alpha=-0.5), -0.5 * (a.to_scipy() @ x))

    def test_centroid_norm_use_case(self, rng):
        """The Eq. 15 pattern: V z with one nonzero per column."""
        n, k = 30, 5
        labels = rng.integers(0, k, n)
        v = selection_matrix(labels, k, dtype=np.float64)
        z = rng.standard_normal(n)
        got = spmv(v, z)
        expect = v.to_dense() @ z
        assert np.allclose(got, expect)

    def test_out_parameter(self, rng):
        a = random_csr(5, 4, 0.6, rng=rng, dtype=np.float64)
        x = rng.standard_normal(4)
        out = np.ones(5, dtype=np.float64)  # pre-filled, must be overwritten
        res = spmv(a, x, out=out)
        assert res is out
        assert np.allclose(out, a.to_scipy() @ x)


class TestSpMVInterface:
    def test_dimension_mismatch(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError, match="mismatch"):
            spmv(a, np.ones(5, dtype=np.float32))

    def test_x_must_be_1d(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError):
            spmv(a, np.ones((4, 1), dtype=np.float32))

    def test_out_wrong_length(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng, dtype=np.float64)
        with pytest.raises(ShapeError, match="out"):
            spmv(a, np.ones(4), out=np.empty(7))
