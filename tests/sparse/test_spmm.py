"""Unit tests for SpMM (sparse-dense multiply)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import from_dense, random_csr, selection_matrix, spmm, spmm_transpose_dense


class TestSpMMCorrectness:
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 1.0])
    def test_matches_scipy(self, rng, density):
        a = random_csr(12, 9, density, rng=rng, dtype=np.float64)
        b = rng.standard_normal((9, 7))
        assert np.allclose(spmm(a, b), a.to_scipy() @ b, atol=1e-12)

    def test_empty_rows_give_zero_rows(self, rng):
        dense = np.zeros((5, 4))
        dense[2] = [1, 0, 2, 0]
        a = from_dense(dense)
        b = rng.standard_normal((4, 3))
        out = spmm(a, b)
        assert np.allclose(out[[0, 1, 3, 4]], 0)
        assert np.allclose(out[2], dense[2] @ b)

    def test_trailing_empty_rows(self, rng):
        dense = np.zeros((6, 3))
        dense[0] = [1, 2, 3]
        a = from_dense(dense)
        b = rng.standard_normal((3, 2))
        out = spmm(a, b)
        assert np.allclose(out[1:], 0)

    def test_single_column_b(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((5, 1))
        assert np.allclose(spmm(a, b), a.to_scipy() @ b)

    def test_wide_b_exceeding_block(self, rng):
        # exercises the 128-column blocking path
        a = random_csr(10, 20, 0.3, rng=rng, dtype=np.float64)
        b = rng.standard_normal((20, 300))
        assert np.allclose(spmm(a, b), a.to_scipy() @ b, atol=1e-12)

    def test_alpha_scaling(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((6, 4))
        assert np.allclose(spmm(a, b, alpha=-2.0), -2.0 * (a.to_scipy() @ b))

    def test_float32_accumulation(self, rng):
        a = random_csr(20, 20, 0.5, rng=rng, dtype=np.float32)
        b = rng.standard_normal((20, 5)).astype(np.float32)
        assert np.allclose(spmm(a, b), a.to_scipy() @ b, rtol=1e-5, atol=1e-5)

    def test_zero_column_output(self, rng):
        a = random_csr(4, 4, 0.5, rng=rng)
        out = spmm(a, np.zeros((4, 0), dtype=np.float32))
        assert out.shape == (4, 0)


class TestSpMMInterface:
    def test_dimension_mismatch(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError, match="mismatch"):
            spmm(a, np.ones((5, 2), dtype=np.float32))

    def test_b_must_be_2d(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError):
            spmm(a, np.ones(4, dtype=np.float32))

    def test_out_parameter(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((5, 3))
        out = np.empty((5, 3), dtype=np.float64)
        res = spmm(a, b, out=out)
        assert res is out
        assert np.allclose(out, a.to_scipy() @ b)

    def test_out_wrong_shape_rejected(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((5, 3))
        with pytest.raises(ShapeError, match="out"):
            spmm(a, b, out=np.empty((5, 4)))

    def test_b_promoted_to_a_dtype(self, rng):
        a = random_csr(4, 4, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((4, 2)).astype(np.float32)
        out = spmm(a, b)
        assert out.dtype == np.float64


class TestTransposedOrientation:
    def test_kvt_via_vk_transpose(self, rng):
        """E = K V^T equals (V K)^T for symmetric K — Popcorn's trick."""
        n, k = 25, 4
        x = rng.standard_normal((n, 3))
        k_mat = x @ x.T  # symmetric
        labels = rng.integers(0, k, n)
        v = selection_matrix(labels, k, dtype=np.float64)
        e = spmm_transpose_dense(v, k_mat)
        expect = k_mat @ v.to_dense().T
        assert e.shape == (n, k)
        assert np.allclose(e, expect, atol=1e-10)
        assert e.flags.c_contiguous

    def test_alpha_in_transpose(self, rng):
        a = random_csr(4, 6, 0.5, rng=rng, dtype=np.float64)
        b = rng.standard_normal((6, 6))
        got = spmm_transpose_dense(a, b, alpha=-2.0)
        assert np.allclose(got, (-2.0 * (a.to_scipy() @ b)).T)
