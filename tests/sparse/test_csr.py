"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import CSRMatrix, from_dense, random_csr


def make_simple():
    # [[1, 0, 2],
    #  [0, 0, 0],
    #  [0, 3, 0]]
    return CSRMatrix(
        np.array([1.0, 2.0, 3.0], dtype=np.float32),
        np.array([0, 2, 1], dtype=np.int32),
        np.array([0, 2, 2, 3], dtype=np.int64),
        (3, 3),
    )


class TestConstruction:
    def test_basic_properties(self):
        a = make_simple()
        assert a.shape == (3, 3)
        assert a.nnz == 3
        assert a.nrows == 3
        assert a.ncols == 3
        assert a.dtype == np.float32

    def test_density(self):
        a = make_simple()
        assert a.density == pytest.approx(3 / 9)

    def test_zero_size_matrix(self):
        a = CSRMatrix(
            np.empty(0, dtype=np.float32),
            np.empty(0, dtype=np.int32),
            np.zeros(1, dtype=np.int64),
            (0, 5),
        )
        assert a.nnz == 0
        assert a.to_dense().shape == (0, 5)

    def test_empty_rows_and_cols(self):
        a = CSRMatrix(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int32),
            np.zeros(4, dtype=np.int64),
            (3, 3),
        )
        assert np.allclose(a.to_dense(), 0)

    def test_row_nnz(self):
        a = make_simple()
        assert np.array_equal(a.row_nnz(), [2, 0, 1])

    def test_row_indices(self):
        a = make_simple()
        assert np.array_equal(a.row_indices(), [0, 0, 2])


class TestValidation:
    def test_rowptr_length_mismatch(self):
        with pytest.raises(SparseFormatError, match="rowptrs"):
            CSRMatrix(
                np.array([1.0]), np.array([0], dtype=np.int32),
                np.array([0, 1, 1], dtype=np.int64), (1, 1),
            )

    def test_rowptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError, match="rowptrs\\[0\\]"):
            CSRMatrix(
                np.array([1.0]), np.array([0], dtype=np.int32),
                np.array([1, 1], dtype=np.int64), (1, 1),
            )

    def test_rowptr_must_end_at_nnz(self):
        with pytest.raises(SparseFormatError, match="nnz"):
            CSRMatrix(
                np.array([1.0]), np.array([0], dtype=np.int32),
                np.array([0, 0], dtype=np.int64), (1, 1),
            )

    def test_rowptr_monotone(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSRMatrix(
                np.array([1.0, 2.0]), np.array([0, 0], dtype=np.int32),
                np.array([0, 2, 1, 2], dtype=np.int64), (3, 1),
            )

    def test_column_out_of_bounds(self):
        with pytest.raises(SparseFormatError, match="out of bounds"):
            CSRMatrix(
                np.array([1.0]), np.array([5], dtype=np.int32),
                np.array([0, 1], dtype=np.int64), (1, 3),
            )

    def test_negative_column(self):
        with pytest.raises(SparseFormatError, match="out of bounds"):
            CSRMatrix(
                np.array([1.0]), np.array([-1], dtype=np.int32),
                np.array([0, 1], dtype=np.int64), (1, 3),
            )

    def test_duplicate_column_in_row(self):
        with pytest.raises(SparseFormatError, match="strictly increasing"):
            CSRMatrix(
                np.array([1.0, 2.0]), np.array([1, 1], dtype=np.int32),
                np.array([0, 2], dtype=np.int64), (1, 3),
            )

    def test_unsorted_columns_in_row(self):
        with pytest.raises(SparseFormatError, match="strictly increasing"):
            CSRMatrix(
                np.array([1.0, 2.0]), np.array([2, 0], dtype=np.int32),
                np.array([0, 2], dtype=np.int64), (1, 3),
            )

    def test_values_colinds_length_mismatch(self):
        with pytest.raises(SparseFormatError, match="disagree"):
            CSRMatrix(
                np.array([1.0, 2.0]), np.array([0], dtype=np.int32),
                np.array([0, 2], dtype=np.int64), (1, 3),
            )

    def test_integer_values_rejected(self):
        with pytest.raises(SparseFormatError, match="float32/float64"):
            CSRMatrix(
                np.array([1], dtype=np.int64), np.array([0], dtype=np.int32),
                np.array([0, 1], dtype=np.int64), (1, 1),
            )

    def test_boundary_decreasing_columns_across_rows_allowed(self):
        # column decreases at a row boundary — legal
        a = CSRMatrix(
            np.array([1.0, 2.0], dtype=np.float64),
            np.array([2, 0], dtype=np.int32),
            np.array([0, 1, 2], dtype=np.int64),
            (2, 3),
        )
        assert a[0, 2] == 1.0
        assert a[1, 0] == 2.0


class TestConversions:
    def test_to_dense_round_trip(self, rng):
        dense = rng.standard_normal((7, 5))
        dense[dense < 0.3] = 0
        a = from_dense(dense)
        assert np.allclose(a.to_dense(), dense)

    def test_to_scipy_matches_dense(self, rng):
        a = random_csr(8, 6, 0.4, rng=rng)
        assert np.allclose(a.to_scipy().toarray(), a.to_dense())

    def test_astype(self):
        a = make_simple()
        b = a.astype(np.float64)
        assert b.dtype == np.float64
        assert np.allclose(b.to_dense(), a.to_dense())
        # original untouched
        assert a.dtype == np.float32

    def test_copy_is_deep(self):
        a = make_simple()
        b = a.copy()
        b.values[0] = 99.0
        assert a.values[0] == 1.0


class TestElementAccess:
    def test_getitem_stored_and_zero(self):
        a = make_simple()
        assert a[0, 0] == 1.0
        assert a[0, 2] == 2.0
        assert a[0, 1] == 0.0
        assert a[1, 1] == 0.0
        assert a[2, 1] == 3.0

    def test_getitem_out_of_bounds(self):
        a = make_simple()
        with pytest.raises(ShapeError):
            a[3, 0]
        with pytest.raises(ShapeError):
            a[0, -4]

    def test_getitem_requires_pair(self):
        a = make_simple()
        with pytest.raises(ShapeError):
            a[0]


class TestEquality:
    def test_equal_matrices(self):
        assert make_simple() == make_simple()

    def test_different_values(self):
        a, b = make_simple(), make_simple()
        b.values[0] = 7.0
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_simple())

    def test_allclose(self):
        a, b = make_simple(), make_simple()
        b.values[0] += 1e-3
        assert a.allclose(b, atol=1e-2)
        assert not a.allclose(b, rtol=0, atol=1e-5)

    def test_allclose_shape_mismatch(self, rng):
        a = random_csr(3, 3, 0.5, rng=rng)
        b = random_csr(3, 4, 0.5, rng=rng)
        assert not a.allclose(b)
