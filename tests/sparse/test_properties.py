"""Property-based tests (hypothesis) for the sparse substrate.

These pin the algebraic laws the Popcorn pipeline silently relies on:
agreement with scipy on arbitrary inputs, linearity of SpMM/SpMV,
transpose involution, and the structural invariants of selection
matrices for arbitrary label vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.selection import verify_selection_invariants
from repro.sparse import (
    add,
    from_coo,
    from_dense,
    scale,
    selection_matrix,
    spgemm,
    spmm,
    spmv,
    transpose,
)

# bounded float strategy that avoids inf/nan and extreme magnitudes
finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def dense_matrix(draw, max_side=12):
    m = draw(st.integers(1, max_side))
    n = draw(st.integers(1, max_side))
    a = draw(arrays(np.float64, (m, n), elements=finite))
    # sparsify deterministically so patterns vary
    mask = draw(arrays(np.bool_, (m, n)))
    return np.where(mask, a, 0.0)


@given(dense_matrix())
@settings(max_examples=60, deadline=None)
def test_from_dense_round_trip(d):
    a = from_dense(d)
    a.validate()
    assert np.array_equal(a.to_dense(), d)


@given(dense_matrix())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(d):
    a = from_dense(d)
    assert np.array_equal(transpose(transpose(a)).to_dense(), d.T.T)


@given(dense_matrix(), st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_spmm_matches_dense(d, p):
    a = from_dense(d)
    rng = np.random.default_rng(0)
    b = rng.standard_normal((d.shape[1], p))
    assert np.allclose(spmm(a, b), d @ b, atol=1e-9)


@given(dense_matrix())
@settings(max_examples=50, deadline=None)
def test_spmv_matches_dense(d):
    a = from_dense(d)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(d.shape[1])
    assert np.allclose(spmv(a, x), d @ x, atol=1e-9)


@given(dense_matrix())
@settings(max_examples=40, deadline=None)
def test_spmm_linearity_in_alpha(d):
    a = from_dense(d)
    rng = np.random.default_rng(2)
    b = rng.standard_normal((d.shape[1], 3))
    assert np.allclose(spmm(a, b, alpha=-2.0), -2.0 * spmm(a, b), atol=1e-9)


@given(dense_matrix(), dense_matrix())
@settings(max_examples=40, deadline=None)
def test_add_commutes(d1, d2):
    if d1.shape != d2.shape:
        d2 = np.zeros_like(d1)
    a, b = from_dense(d1), from_dense(d2)
    assert np.allclose(add(a, b).to_dense(), add(b, a).to_dense())


@given(dense_matrix(), st.floats(min_value=-10, max_value=10, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scale_distributes(d, alpha):
    a = from_dense(d)
    assert np.allclose(scale(a, alpha).to_dense(), alpha * d, atol=1e-9)


@st.composite
def compatible_pair(draw):
    m = draw(st.integers(1, 8))
    n = draw(st.integers(1, 8))
    p = draw(st.integers(1, 8))
    d1 = draw(arrays(np.float64, (m, n), elements=finite))
    d2 = draw(arrays(np.float64, (n, p), elements=finite))
    mask1 = draw(arrays(np.bool_, (m, n)))
    mask2 = draw(arrays(np.bool_, (n, p)))
    return np.where(mask1, d1, 0.0), np.where(mask2, d2, 0.0)


@given(compatible_pair())
@settings(max_examples=50, deadline=None)
def test_spgemm_matches_dense(pair):
    d1, d2 = pair
    got = spgemm(from_dense(d1), from_dense(d2)).to_dense()
    assert np.allclose(got, d1 @ d2, atol=1e-8)


@given(compatible_pair())
@settings(max_examples=40, deadline=None)
def test_spgemm_transpose_law(pair):
    """(A B)^T == B^T A^T."""
    d1, d2 = pair
    a, b = from_dense(d1), from_dense(d2)
    lhs = transpose(spgemm(a, b)).to_dense()
    rhs = spgemm(transpose(b), transpose(a)).to_dense()
    assert np.allclose(lhs, rhs, atol=1e-8)


@given(
    st.integers(1, 6).flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.lists(st.integers(0, k - 1), min_size=k, max_size=60),
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_selection_matrix_invariants(args):
    k, label_list = args
    labels = np.asarray(label_list, dtype=np.int32)
    v = selection_matrix(labels, k)
    v.validate()
    verify_selection_invariants(v, labels)


@given(
    st.lists(st.integers(0, 3), min_size=4, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_selection_row_sums_are_indicator_of_nonempty(label_list):
    labels = np.asarray(label_list, dtype=np.int32)
    v = selection_matrix(labels, 4, dtype=np.float64)
    sums = v.to_dense().sum(axis=1)
    counts = np.bincount(labels, minlength=4)
    assert np.allclose(sums, (counts > 0).astype(float), atol=1e-6)


@given(dense_matrix())
@settings(max_examples=40, deadline=None)
def test_from_coo_agrees_with_from_dense(d):
    rows, cols = np.nonzero(d)
    a = from_coo(rows, cols, d[rows, cols], d.shape)
    assert np.array_equal(a.to_dense(), d)
