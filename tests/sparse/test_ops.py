"""Unit tests for CSR structural/elementwise operations."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    add,
    col_sums,
    diagonal,
    from_dense,
    prune_explicit_zeros,
    random_csr,
    row_scale,
    row_sums,
    scale,
    transpose,
)


class TestTranspose:
    def test_matches_dense(self, rng):
        a = random_csr(7, 11, 0.3, rng=rng, dtype=np.float64)
        t = transpose(a)
        t.validate()
        assert t.shape == (11, 7)
        assert np.allclose(t.to_dense(), a.to_dense().T)

    def test_involution(self, rng):
        a = random_csr(6, 9, 0.4, rng=rng, dtype=np.float64)
        assert transpose(transpose(a)) == a

    def test_empty(self):
        a = from_dense(np.zeros((3, 5)))
        t = transpose(a)
        assert t.shape == (5, 3)
        assert t.nnz == 0


class TestDiagonal:
    def test_square(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        assert np.allclose(diagonal(a), np.diag(a.to_dense()))

    def test_rectangular_wide(self, rng):
        a = random_csr(3, 7, 0.6, rng=rng, dtype=np.float64)
        assert np.allclose(diagonal(a), np.diag(a.to_dense()))

    def test_rectangular_tall(self, rng):
        a = random_csr(7, 3, 0.6, rng=rng, dtype=np.float64)
        assert np.allclose(diagonal(a), np.diag(a.to_dense()))

    def test_empty_diag(self):
        a = from_dense(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert np.allclose(diagonal(a), [0.0, 0.0])


class TestScaleAdd:
    def test_scale(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng, dtype=np.float64)
        assert np.allclose(scale(a, -2.0).to_dense(), -2.0 * a.to_dense())

    def test_scale_preserves_pattern(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng)
        b = scale(a, 3.0)
        assert np.array_equal(a.colinds, b.colinds)
        assert np.array_equal(a.rowptrs, b.rowptrs)

    def test_add_disjoint_patterns(self):
        a = from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
        b = from_dense(np.array([[0.0, 2.0], [0.0, 3.0]]))
        s = add(a, b)
        assert np.allclose(s.to_dense(), [[1, 2], [0, 3]])

    def test_add_overlapping(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        b = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        assert np.allclose(add(a, b).to_dense(), a.to_dense() + b.to_dense())

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            add(random_csr(3, 3, 0.5, rng=rng), random_csr(3, 4, 0.5, rng=rng))

    def test_add_dtype_promotion(self, rng):
        a = random_csr(3, 3, 0.5, rng=rng, dtype=np.float32)
        b = random_csr(3, 3, 0.5, rng=rng, dtype=np.float64)
        assert add(a, b).dtype == np.float64


class TestReductions:
    def test_row_sums(self, rng):
        a = random_csr(8, 5, 0.4, rng=rng, dtype=np.float64)
        assert np.allclose(row_sums(a), a.to_dense().sum(axis=1))

    def test_col_sums(self, rng):
        a = random_csr(8, 5, 0.4, rng=rng, dtype=np.float64)
        assert np.allclose(col_sums(a), a.to_dense().sum(axis=0))

    def test_row_sums_with_empty_rows(self):
        dense = np.zeros((4, 3))
        dense[2] = [1, 2, 3]
        assert np.allclose(row_sums(from_dense(dense)), [0, 0, 6, 0])

    def test_empty_matrix_reductions(self):
        a = from_dense(np.zeros((3, 4)))
        assert np.allclose(row_sums(a), 0)
        assert np.allclose(col_sums(a), 0)


class TestRowScale:
    def test_matches_dense(self, rng):
        a = random_csr(6, 4, 0.5, rng=rng, dtype=np.float64)
        d = rng.standard_normal(6)
        assert np.allclose(row_scale(a, d).to_dense(), np.diag(d) @ a.to_dense())

    def test_wrong_length(self, rng):
        a = random_csr(6, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError):
            row_scale(a, np.ones(5))


class TestPrune:
    def test_drops_explicit_zeros(self):
        a = from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
        a.values[0] = 0.0  # introduce explicit zero
        p = prune_explicit_zeros(a)
        assert p.nnz == 2
        assert np.allclose(p.to_dense(), [[0, 0], [2, 3]])

    def test_noop_when_clean(self, rng):
        a = random_csr(5, 5, 0.5, rng=rng)
        p = prune_explicit_zeros(a)
        assert p == a
