"""Unit tests for the COO assembly container."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import random_csr
from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_basic(self):
        m = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        assert m.nnz == 2
        assert np.allclose(m.to_dense(), [[0, 2], [3, 0]])

    def test_empty(self):
        m = COOMatrix.empty((3, 4))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 4)

    def test_out_of_bounds(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([5], [0], [1.0], (2, 2))
        with pytest.raises(SparseFormatError):
            COOMatrix([0], [9], [1.0], (2, 2))

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            COOMatrix([0, 1], [0], [1.0], (2, 2))

    def test_from_dense_round_trip(self, rng):
        d = rng.standard_normal((5, 7))
        d[np.abs(d) < 0.6] = 0
        m = COOMatrix.from_dense(d)
        assert np.allclose(m.to_dense(), d)


class TestCsrInterop:
    def test_csr_round_trip(self, rng):
        a = random_csr(8, 6, 0.4, rng=rng, dtype=np.float64)
        m = COOMatrix.from_csr(a)
        back = m.to_csr()
        assert back == a

    def test_duplicates_sum_on_conversion(self):
        m = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (1, 2))
        csr = m.to_csr()
        assert csr.nnz == 1
        assert csr[0, 1] == 5.0

    def test_duplicates_sum_in_dense(self):
        m = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert m.to_dense()[0, 0] == 3.0


class TestAssembly:
    def test_append(self):
        m = COOMatrix.empty((2, 2))
        m2 = m.append(0, 1, 5.0).append(1, 0, 7.0)
        assert m.nnz == 0  # immutable
        assert m2.nnz == 2
        assert m2.to_dense()[0, 1] == 5.0

    def test_append_bounds(self):
        with pytest.raises(SparseFormatError):
            COOMatrix.empty((2, 2)).append(5, 0, 1.0)

    def test_concat(self):
        a = COOMatrix([0], [0], [1.0], (2, 2))
        b = COOMatrix([1], [1], [2.0], (2, 2))
        c = COOMatrix.concat([a, b])
        assert np.allclose(c.to_dense(), [[1, 0], [0, 2]])

    def test_concat_overlapping_sums(self):
        a = COOMatrix([0], [0], [1.0], (1, 1))
        b = COOMatrix([0], [0], [2.0], (1, 1))
        assert COOMatrix.concat([a, b]).to_csr()[0, 0] == 3.0

    def test_concat_shape_mismatch(self):
        a = COOMatrix.empty((2, 2))
        b = COOMatrix.empty((2, 3))
        with pytest.raises(ShapeError):
            COOMatrix.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(ShapeError):
            COOMatrix.concat([])


class TestTranspose:
    def test_transpose_matches_dense(self, rng):
        a = random_csr(6, 9, 0.3, rng=rng, dtype=np.float64)
        m = COOMatrix.from_csr(a)
        t = m.transpose()
        assert t.shape == (9, 6)
        assert np.allclose(t.to_dense(), a.to_dense().T)

    def test_double_transpose(self, rng):
        a = random_csr(4, 5, 0.5, rng=rng, dtype=np.float64)
        m = COOMatrix.from_csr(a)
        assert np.allclose(m.transpose().transpose().to_dense(), m.to_dense())
