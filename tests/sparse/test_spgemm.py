"""Unit tests for SpGEMM (sparse-sparse multiply)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    from_dense,
    identity,
    random_csr,
    selection_matrix,
    spgemm,
    spgemm_flops,
    transpose,
)


class TestSpGEMMCorrectness:
    @pytest.mark.parametrize("da,db", [(0.1, 0.1), (0.4, 0.4), (1.0, 0.2), (0.0, 0.5)])
    def test_matches_scipy(self, rng, da, db):
        a = random_csr(9, 12, da, rng=rng, dtype=np.float64)
        b = random_csr(12, 7, db, rng=rng, dtype=np.float64)
        got = spgemm(a, b)
        got.validate()
        want = (a.to_scipy() @ b.to_scipy()).toarray()
        assert np.allclose(got.to_dense(), want, atol=1e-12)

    def test_identity_left(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        assert np.allclose(spgemm(identity(6, dtype=np.float64), a).to_dense(), a.to_dense())

    def test_identity_right(self, rng):
        a = random_csr(6, 6, 0.5, rng=rng, dtype=np.float64)
        assert np.allclose(spgemm(a, identity(6, dtype=np.float64)).to_dense(), a.to_dense())

    def test_empty_operand(self, rng):
        a = from_dense(np.zeros((4, 5)))
        b = random_csr(5, 3, 0.5, rng=rng)
        out = spgemm(a, b)
        assert out.nnz == 0
        assert out.shape == (4, 3)

    def test_vkvt_diagonal_use_case(self, rng):
        """diag(V K V^T) — the unoptimised centroid-norm path of Sec. 3.3."""
        n, k = 20, 4
        x = rng.standard_normal((n, 3))
        k_dense = x @ x.T
        labels = rng.integers(0, k, n)
        v = selection_matrix(labels, k, dtype=np.float64)
        kc = from_dense(k_dense)
        vk = spgemm(v, kc)
        vkvt = spgemm(vk, transpose(v))
        want = v.to_dense() @ k_dense @ v.to_dense().T
        assert np.allclose(vkvt.to_dense(), want, atol=1e-10)

    def test_dtype_promotion(self, rng):
        a = random_csr(4, 4, 0.5, rng=rng, dtype=np.float32)
        b = random_csr(4, 4, 0.5, rng=rng, dtype=np.float64)
        assert spgemm(a, b).dtype == np.float64

    def test_cancellation_keeps_explicit_zero(self):
        # a row where products cancel exactly: structural nonzero retained
        a = from_dense(np.array([[1.0, 1.0]]))
        b = from_dense(np.array([[1.0], [-1.0]]))
        out = spgemm(a, b)
        assert out.nnz == 1
        assert out[0, 0] == 0.0


class TestSpGEMMFlops:
    def test_flops_counts_expansion(self, rng):
        a = random_csr(6, 8, 0.4, rng=rng)
        b = random_csr(8, 5, 0.4, rng=rng)
        mults = spgemm_flops(a, b)
        # brute force: sum over a-nonzeros of b-row sizes
        brute = 0
        rows = a.row_indices()
        b_nnz = np.diff(b.rowptrs)
        for c in a.colinds:
            brute += int(b_nnz[c])
        assert mults == brute

    def test_flops_empty(self):
        a = from_dense(np.zeros((3, 3)))
        assert spgemm_flops(a, a) == 0

    def test_flops_shape_mismatch(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        with pytest.raises(ShapeError):
            spgemm_flops(a, random_csr(5, 2, 0.5, rng=rng))


class TestSpGEMMInterface:
    def test_shape_mismatch(self, rng):
        a = random_csr(3, 4, 0.5, rng=rng)
        b = random_csr(5, 2, 0.5, rng=rng)
        with pytest.raises(ShapeError, match="mismatch"):
            spgemm(a, b)
