"""Unit tests for CSR builders."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import (
    binary_selection_matrix,
    cluster_counts,
    from_coo,
    from_dense,
    from_scipy,
    identity,
    random_csr,
    selection_matrix,
)


class TestFromDense:
    def test_exact_round_trip(self, rng):
        dense = rng.standard_normal((6, 9))
        dense[np.abs(dense) < 0.5] = 0
        a = from_dense(dense)
        a.validate()
        assert np.allclose(a.to_dense(), dense)

    def test_tolerance_drops_small_entries(self):
        dense = np.array([[0.1, 0.9], [0.0, -0.05]])
        a = from_dense(dense, tol=0.2)
        assert a.nnz == 1
        assert a[0, 1] == pytest.approx(0.9)

    def test_all_zero(self):
        a = from_dense(np.zeros((4, 4)))
        assert a.nnz == 0

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            from_dense(np.ones(4))

    def test_dtype_conversion(self):
        a = from_dense(np.eye(3, dtype=np.float64), dtype=np.float32)
        assert a.dtype == np.float32


class TestFromCoo:
    def test_basic(self):
        a = from_coo([0, 1], [1, 0], [2.0, 3.0], (2, 2))
        assert a[0, 1] == 2.0
        assert a[1, 0] == 3.0

    def test_duplicates_summed(self):
        a = from_coo([0, 0, 0], [1, 1, 0], [2.0, 3.0, 1.0], (1, 2))
        assert a[0, 1] == 5.0
        assert a[0, 0] == 1.0
        assert a.nnz == 2

    def test_duplicates_rejected_when_disabled(self):
        with pytest.raises(SparseFormatError, match="duplicate"):
            from_coo([0, 0], [1, 1], [2.0, 3.0], (1, 2), sum_duplicates=False)

    def test_out_of_bounds_row(self):
        with pytest.raises(SparseFormatError, match="row index"):
            from_coo([5], [0], [1.0], (2, 2))

    def test_out_of_bounds_col(self):
        with pytest.raises(SparseFormatError, match="column index"):
            from_coo([0], [5], [1.0], (2, 2))

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            from_coo([0, 1], [0], [1.0], (2, 2))

    def test_empty(self):
        a = from_coo([], [], [], (3, 4))
        assert a.nnz == 0
        assert a.shape == (3, 4)

    def test_canonical_order(self, rng):
        n = 20
        rows = rng.integers(0, 5, n)
        cols = rng.integers(0, 7, n)
        vals = rng.standard_normal(n)
        a = from_coo(rows, cols, vals, (5, 7))
        a.validate()  # checks sorted, unique columns per row


class TestFromScipy:
    def test_csr_round_trip(self, rng):
        s = sp.random(10, 8, density=0.3, random_state=42, format="csr")
        a = from_scipy(s)
        a.validate()
        assert np.allclose(a.to_dense(), s.toarray())

    def test_coo_input(self, rng):
        s = sp.random(5, 5, density=0.4, random_state=1, format="coo")
        a = from_scipy(s)
        assert np.allclose(a.to_dense(), s.toarray())


class TestIdentity:
    def test_identity_values(self):
        a = identity(4)
        assert np.allclose(a.to_dense(), np.eye(4, dtype=np.float32))

    def test_identity_zero(self):
        a = identity(0)
        assert a.shape == (0, 0)
        assert a.nnz == 0


class TestRandomCSR:
    def test_exact_nnz(self, rng):
        a = random_csr(10, 10, 0.25, rng=rng)
        assert a.nnz == 25
        a.validate()

    def test_density_bounds(self, rng):
        with pytest.raises(SparseFormatError):
            random_csr(5, 5, 1.5, rng=rng)
        with pytest.raises(SparseFormatError):
            random_csr(5, 5, -0.1, rng=rng)

    def test_full_density(self, rng):
        a = random_csr(4, 4, 1.0, rng=rng)
        assert a.nnz == 16

    def test_zero_density(self, rng):
        a = random_csr(4, 4, 0.0, rng=rng)
        assert a.nnz == 0

    def test_reproducible(self):
        a = random_csr(6, 6, 0.5, rng=np.random.default_rng(3))
        b = random_csr(6, 6, 0.5, rng=np.random.default_rng(3))
        assert a == b


class TestSelectionMatrix:
    def test_shape_and_nnz(self, rng):
        labels = rng.integers(0, 4, 30)
        v = selection_matrix(labels, 4)
        assert v.shape == (4, 30)
        assert v.nnz == 30

    def test_values_are_reciprocal_cardinalities(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        v = selection_matrix(labels, 3)
        dense = v.to_dense()
        assert dense[0, 0] == pytest.approx(0.5)
        assert dense[1, 2] == pytest.approx(1.0)
        assert dense[2, 5] == pytest.approx(1 / 3)

    def test_one_nonzero_per_column(self, rng):
        labels = rng.integers(0, 5, 40)
        v = selection_matrix(labels, 5)
        assert np.array_equal(
            np.count_nonzero(v.to_dense(), axis=0), np.ones(40, dtype=int)
        )

    def test_empty_cluster_gives_empty_row(self):
        labels = np.array([0, 0, 2, 2])  # cluster 1 empty
        v = selection_matrix(labels, 3)
        assert v.row_nnz()[1] == 0
        assert np.allclose(v.to_dense()[1], 0)

    def test_label_out_of_range(self):
        with pytest.raises(ShapeError):
            selection_matrix(np.array([0, 5]), 3)

    def test_matvec_computes_cluster_means(self, rng):
        labels = rng.integers(0, 3, 20)
        x = rng.standard_normal(20)
        v = selection_matrix(labels, 3, dtype=np.float64)
        means = v.to_dense() @ x
        for j in range(3):
            members = x[labels == j]
            if members.size:
                assert means[j] == pytest.approx(members.mean())

    def test_float_labels_with_integral_values_accepted(self):
        v = selection_matrix(np.array([0.0, 1.0, 1.0]), 2)
        assert v.nnz == 3


class TestBinarySelection:
    def test_ones_values(self, rng):
        labels = rng.integers(0, 3, 15)
        v = binary_selection_matrix(labels, 3)
        assert np.all(v.values == 1.0)
        # row sums are cluster counts
        assert np.array_equal(
            v.to_dense().sum(axis=1).astype(int), np.bincount(labels, minlength=3)
        )


class TestClusterCounts:
    def test_counts(self):
        assert np.array_equal(cluster_counts(np.array([0, 1, 1, 3]), 5), [1, 2, 0, 1, 0])

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            cluster_counts(np.array([0, 7]), 3)
