"""Tests for spectral clustering via weighted Kernel K-means."""

import networkx as nx
import numpy as np
import pytest

from repro.data import make_circles, make_moons
from repro.errors import ConfigError, ShapeError
from repro.eval import adjusted_rand_index
from repro.graph import (
    SpectralKernelKMeans,
    cluster_graph,
    knn_graph,
    ncut_kernel,
    power_iteration_embedding,
)


class TestKnnGraph:
    def test_symmetric_and_node_count(self, rng):
        x = rng.standard_normal((50, 3))
        g = knn_graph(x, 5)
        assert g.number_of_nodes() == 50
        assert not g.is_directed()

    def test_min_degree_at_least_k(self, rng):
        x = rng.standard_normal((40, 2))
        g = knn_graph(x, 6)
        assert min(dict(g.degree()).values()) >= 6

    def test_connectivity_mode_unit_weights(self, rng):
        x = rng.standard_normal((20, 2))
        g = knn_graph(x, 3, mode="connectivity")
        assert all(d["weight"] == 1.0 for _, _, d in g.edges(data=True))

    def test_distance_mode_weights_in_unit_interval(self, rng):
        x = rng.standard_normal((20, 2))
        g = knn_graph(x, 3, mode="distance")
        ws = [d["weight"] for _, _, d in g.edges(data=True)]
        assert all(0 < w <= 1.0 for w in ws)

    def test_invalid_params(self, rng):
        x = rng.standard_normal((10, 2))
        with pytest.raises(ConfigError):
            knn_graph(x, 0)
        with pytest.raises(ConfigError):
            knn_graph(x, 10)
        with pytest.raises(ConfigError):
            knn_graph(x, 3, mode="magic")


class TestNcutKernel:
    def test_psd_at_sigma_one(self, rng):
        a = np.abs(rng.standard_normal((15, 15)))
        a = 0.5 * (a + a.T)
        np.fill_diagonal(a, 0)
        k, w = ncut_kernel(a, sigma=1.0)
        eigs = np.linalg.eigvalsh(k)
        assert eigs.min() > -1e-10

    def test_weights_are_degrees(self, rng):
        a = np.ones((4, 4)) - np.eye(4)
        _, w = ncut_kernel(a)
        assert np.allclose(w, 3.0)

    def test_isolated_vertex_handled(self):
        a = np.zeros((3, 3))
        a[0, 1] = a[1, 0] = 1.0
        k, w = ncut_kernel(a)
        assert np.isfinite(k).all()
        assert w[2] == 1.0  # unit self-degree fallback

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            ncut_kernel(-np.ones((3, 3)))
        asym = np.zeros((3, 3))
        asym[0, 1] = 1.0
        with pytest.raises(ConfigError):
            ncut_kernel(asym)
        with pytest.raises(ConfigError):
            ncut_kernel(np.zeros((3, 3)), sigma=0.5)
        with pytest.raises(ShapeError):
            ncut_kernel(np.zeros((3, 4)))


class TestPowerIterationEmbedding:
    def test_matches_dense_eigenvectors(self, rng):
        """The embedding spans the top eigenspace of D^-1/2 A D^-1/2."""
        a = np.abs(rng.standard_normal((30, 30)))
        a = 0.5 * (a + a.T)
        np.fill_diagonal(a, 0)
        emb = power_iteration_embedding(a, 3, seed=0)
        d = a.sum(axis=1)
        s = a / np.sqrt(np.outer(d, d))
        vals, vecs = np.linalg.eigh(s)
        top = vecs[:, np.argsort(vals)[::-1][:3]]
        want = top / np.sqrt(d)[:, None]
        want /= np.linalg.norm(want, axis=1, keepdims=True)
        # compare subspaces via principal angles of the row spaces
        q1, _ = np.linalg.qr(emb)
        q2, _ = np.linalg.qr(want)
        svals = np.linalg.svd(q1.T @ q2, compute_uv=False)
        assert svals.min() > 0.99

    def test_disconnected_components_separate(self):
        """Two components -> rows cluster into two distinct directions."""
        a = np.zeros((8, 8))
        for i, j in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (0, 2), (4, 6)]:
            a[i, j] = a[j, i] = 1.0
        emb = power_iteration_embedding(a, 2, seed=1)
        from repro.baselines import LloydKMeans

        lab = LloydKMeans(2, seed=0).fit(emb).labels_
        assert len(set(lab[:4])) == 1
        assert len(set(lab[4:])) == 1
        assert lab[0] != lab[4]

    def test_validation(self, rng):
        a = np.ones((5, 5))
        with pytest.raises(ConfigError):
            power_iteration_embedding(a, 0)
        with pytest.raises(ConfigError):
            power_iteration_embedding(a, 6)
        with pytest.raises(ConfigError):
            power_iteration_embedding(a, 2, iters=0)


class TestSpectralEstimator:
    def test_moons_solved(self):
        """The geometry where plain kernel k-means struggles."""
        x, y = make_moons(400, rng=3)
        m = SpectralKernelKMeans(2, seed=0).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.95

    def test_circles_solved(self):
        x, y = make_circles(400, rng=3)
        m = SpectralKernelKMeans(2, seed=0).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.95

    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_moons_robust_across_data_draws(self, seed):
        x, y = make_moons(300, rng=seed)
        m = SpectralKernelKMeans(2, seed=0).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.9

    def test_attributes(self):
        x, y = make_moons(150, rng=1)
        m = SpectralKernelKMeans(2, seed=0).fit(x)
        assert m.labels_.shape == (150,)
        assert isinstance(m.graph_, nx.Graph)
        assert m.objective_ > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpectralKernelKMeans(0)
        with pytest.raises(ConfigError):
            SpectralKernelKMeans(2, n_init=0)


class TestClusterGraph:
    def test_two_cliques(self):
        g = nx.disjoint_union(nx.complete_graph(10), nx.complete_graph(12))
        g.add_edge(0, 15)
        labels = cluster_graph(g, 2, seed=0)
        truth = np.array([0] * 10 + [1] * 12)
        assert adjusted_rand_index(labels, truth) == 1.0

    def test_caveman_communities(self):
        g = nx.connected_caveman_graph(3, 8)
        labels = cluster_graph(g, 3, seed=0)
        assert adjusted_rand_index(labels, np.repeat([0, 1, 2], 8)) == 1.0

    def test_weighted_barbell(self):
        """Two dense lobes joined by a path: min ncut cuts the path."""
        g = nx.barbell_graph(8, 2)
        labels = cluster_graph(g, 2, seed=0)
        assert labels[0] == labels[7]  # first lobe together
        assert labels[10] == labels[17]  # second lobe together
        assert labels[0] != labels[17]

    def test_too_many_clusters(self):
        with pytest.raises(ConfigError):
            cluster_graph(nx.complete_graph(3), 5)

    def test_arbitrary_node_labels(self):
        g = nx.relabel_nodes(nx.complete_graph(4), {0: "a", 1: "b", 2: "c", 3: "d"})
        labels = cluster_graph(g, 2, seed=0)
        assert labels.shape == (4,)
