"""Tests for the artifact-style CLI and the reporting helpers."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import write_csv, write_libsvm
from repro.reporting import fmt_seconds, fmt_speedup, format_table, write_csv_rows


class TestParser:
    def test_defaults_match_artifact(self):
        args = build_parser().parse_args([])
        assert args.k == 10
        assert args.max_iter == 30
        assert args.kernel == "polynomial"
        assert args.impl == 2
        assert args.check_convergence == 0

    def test_artifact_flags(self):
        args = build_parser().parse_args(
            ["-n", "500", "-d", "20", "-k", "5", "-m", "10", "-t", "0.01",
             "-c", "1", "-f", "linear", "-s", "7", "-l", "0"]
        )
        assert args.n == 500 and args.d == 20 and args.k == 5
        assert args.max_iter == 10 and args.tol == 0.01
        assert args.check_convergence == 1
        assert args.kernel == "linear"
        assert args.seed == 7 and args.impl == 0

    def test_invalid_impl(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-l", "1"])

    def test_invalid_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-f", "quantum"])


class TestMain:
    def test_popcorn_random_data(self, capsys):
        rc = main(["-n", "120", "-d", "6", "-k", "3", "-m", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Popcorn" in out
        assert "gram method" in out

    def test_baseline_impl(self, capsys):
        rc = main(["-n", "80", "-d", "4", "-k", "2", "-m", "2", "-l", "0"])
        assert rc == 0
        assert "baseline CUDA" in capsys.readouterr().out

    def test_multiple_runs(self, capsys):
        rc = main(["-n", "60", "-d", "4", "-k", "2", "-m", "2", "--runs", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n0 ") + out.count("\n1 ") + out.count("\n2 ") >= 3

    def test_output_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "labels.txt")
        rc = main(["-n", "50", "-d", "3", "-k", "2", "-m", "2", "-o", out_file])
        assert rc == 0
        labels = np.loadtxt(out_file)
        assert labels.shape == (50,)
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_input_csv(self, tmp_path, capsys, rng):
        path = str(tmp_path / "in.csv")
        write_csv(path, rng.standard_normal((40, 4)))
        rc = main(["-i", path, "-k", "2", "-m", "2"])
        assert rc == 0
        assert "n=40 d=4" in capsys.readouterr().out

    def test_input_libsvm(self, tmp_path, capsys, rng):
        x = rng.standard_normal((30, 3)).astype(np.float32)
        path = str(tmp_path / "in.libsvm")
        write_libsvm(path, x)
        rc = main(["-i", path, "-k", "2", "-m", "2"])
        assert rc == 0

    def test_breakdown_output(self, capsys):
        rc = main(["-n", "60", "-d", "4", "-k", "2", "-m", "2", "--breakdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cusparse.spmm" in out

    def test_gaussian_kernel_flag(self, capsys):
        rc = main(["-n", "60", "-d", "4", "-k", "2", "-m", "2", "-f", "gaussian"])
        assert rc == 0

    def test_convergence_mode(self, capsys):
        rc = main(["-n", "100", "-d", "4", "-k", "2", "-m", "50", "-c", "1"])
        assert rc == 0

    def test_trace_export(self, tmp_path, capsys):
        import json

        trace = str(tmp_path / "run.trace.json")
        rc = main(["-n", "60", "-d", "4", "-k", "2", "-m", "2", "--trace", trace])
        assert rc == 0
        events = json.load(open(trace))
        assert any(e.get("name") == "cusparse.spmm" for e in events)


class TestReporting:
    def test_fmt_seconds_scales(self):
        assert fmt_seconds(5e-7) == "0.5us"
        assert fmt_seconds(2.5e-3) == "2.50ms"
        assert fmt_seconds(3.0) == "3.000s"

    def test_fmt_speedup(self):
        assert fmt_speedup(2.345) == "2.35x"
        assert fmt_speedup(123.8) == "123.8x"

    def test_format_table_alignment(self):
        t = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = t.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_write_csv_rows(self, tmp_path):
        path = str(tmp_path / "sub" / "rows.csv")
        write_csv_rows(path, ["x", "y"], [[1, 2], [3, 4]])
        content = open(path).read().splitlines()
        assert content[0] == "x,y"
        assert content[2] == "3,4"
