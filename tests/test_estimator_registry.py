"""The string-keyed estimator registry and its JSON config round trip."""

import numpy as np
import pytest

import repro
from repro import available_estimators, get_estimator_class, make_estimator
from repro.data import make_blobs
from repro.errors import ConfigError
from repro.estimators import (
    estimator_config,
    estimator_from_config,
    estimator_name,
    register_estimator,
)

EXPECTED = {
    "popcorn",
    "weighted",
    "onthefly",
    "baseline",
    "prmlt",
    "lloyd",
    "elkan",
    "nystrom",
    "distributed",
    "spectral",
}


class TestRegistry:
    def test_all_ten_estimators_registered(self):
        assert set(available_estimators()) == EXPECTED

    def test_lookup_and_naming_are_inverse(self):
        for name in available_estimators():
            cls = get_estimator_class(name)
            assert estimator_name(cls) == name
            assert estimator_name(make_estimator(name, n_clusters=2)) == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="available"):
            make_estimator("kmeanz")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_estimator("popcorn")(type("Fake", (), {}))

    def test_reregistering_same_class_is_idempotent(self):
        cls = get_estimator_class("popcorn")
        assert register_estimator("popcorn")(cls) is cls

    def test_unregistered_class_has_no_name(self):
        with pytest.raises(ConfigError, match="not a registered estimator"):
            estimator_name(object())

    def test_new_registration_is_instantly_constructible(self):
        from repro.baselines import LloydKMeans

        @register_estimator("test-lloyd-alias")
        class AliasLloyd(LloydKMeans):
            pass

        try:
            est = make_estimator("test-lloyd-alias", n_clusters=2)
            assert isinstance(est, AliasLloyd)
        finally:
            from repro import estimators as mod

            del mod._REGISTRY["test-lloyd-alias"]
            # restore Lloyd's own registry name clobbered by the subclass
            LloydKMeans._registry_name = "lloyd"


class TestConfigRoundTrip:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_config_survives_json(self, name):
        import json

        est = make_estimator(name, n_clusters=3, seed=11)
        cfg = json.loads(json.dumps(estimator_config(est)))
        rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
        assert type(rebuilt) is type(est)
        assert repr(rebuilt.get_params(deep=False)) == repr(est.get_params(deep=False))

    def test_kernel_and_dtype_encoding(self):
        est = make_estimator(
            "popcorn", n_clusters=2, kernel="gaussian", dtype=np.float64
        )
        cfg = estimator_config(est)
        assert cfg["params"]["kernel"]["name"] == "gaussian"
        assert cfg["params"]["dtype"] == {"__kind__": "dtype", "name": "float64"}
        rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
        assert rebuilt.dtype == np.float64
        assert rebuilt.kernel.gamma == est.kernel.gamma

    def test_spec_encoding(self):
        from repro.distributed import INFINIBAND
        from repro.gpu import V100_32GB

        est = make_estimator(
            "distributed", n_clusters=2, n_devices=3, spec=V100_32GB, comm=INFINIBAND
        )
        cfg = estimator_config(est)
        rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
        assert rebuilt.spec == V100_32GB
        assert rebuilt.comm == INFINIBAND

    def test_registry_backend_instance_encodes_by_name(self):
        from repro.engine import get_backend

        est = make_estimator("popcorn", n_clusters=2, backend=get_backend("host"))
        cfg = estimator_config(est)
        assert cfg["params"]["backend"] == "host"
        rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
        assert rebuilt.backend == "host"

    def test_device_instance_encodes_as_its_spec(self):
        from repro.gpu import Device, V100_32GB

        est = make_estimator("popcorn", n_clusters=2, device=Device(V100_32GB))
        cfg = estimator_config(est)
        rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
        assert rebuilt.device == V100_32GB

    def test_custom_configured_backend_rejected_with_hint(self):
        from repro.distributed import INFINIBAND
        from repro.engine import ShardedBackend

        # encoding "sharded:2" by name would silently drop the custom
        # interconnect, so this must be rejected, not misencoded
        est = make_estimator(
            "popcorn", n_clusters=2, backend=ShardedBackend(2, comm=INFINIBAND)
        )
        with pytest.raises(ConfigError, match="backend='sharded:4'"):
            estimator_config(est)

    def test_missing_required_param_is_config_error(self):
        with pytest.raises(ConfigError, match="n_clusters"):
            make_estimator("popcorn")

    def test_round_trip_fit_matches(self):
        x, _ = make_blobs(40, 3, 2, rng=0)
        for name in ("popcorn", "lloyd", "nystrom"):
            est = make_estimator(name, n_clusters=2, seed=3)
            cfg = estimator_config(est)
            rebuilt = estimator_from_config(cfg["estimator"], cfg["params"])
            assert np.array_equal(est.fit(x).labels_, rebuilt.fit(x).labels_)


class TestPackageExports:
    def test_all_names_importable(self):
        missing = [n for n in repro.__all__ if not hasattr(repro, n)]
        assert missing == []

    def test_every_estimator_class_exported(self):
        for name in available_estimators():
            cls = get_estimator_class(name)
            assert cls.__name__ in repro.__all__, cls.__name__
            assert getattr(repro, cls.__name__) is cls

    def test_registry_and_select_api_exported(self):
        for name in (
            "make_estimator",
            "available_estimators",
            "register_estimator",
            "clone",
            "check_is_fitted",
            "NotFittedError",
            "GridSearchKernelKMeans",
            "cross_validate",
            "ParameterGrid",
        ):
            assert name in repro.__all__, name
