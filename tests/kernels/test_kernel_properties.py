"""Property-based tests on kernel functions under random parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    GaussianKernel,
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
)

pos = st.floats(min_value=0.05, max_value=5.0, allow_nan=False)
coef = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
seeds = st.integers(0, 10**6)


def _points(seed, n=10, d=3):
    return np.random.default_rng(seed).standard_normal((n, d))


@given(pos, coef, st.integers(1, 3), seeds)
@settings(max_examples=40, deadline=None)
def test_polynomial_symmetry_and_gram_consistency(gamma, c, r, seed):
    x = _points(seed)
    kern = PolynomialKernel(gamma=gamma, coef0=c, degree=r)
    k = kern.pairwise(x)
    assert np.allclose(k, k.T, atol=1e-8)
    # from_gram on B reproduces pairwise
    b = x @ x.T
    assert np.allclose(kern.from_gram(b.copy()), k, atol=1e-8)


@given(pos, pos, seeds)
@settings(max_examples=40, deadline=None)
def test_gaussian_properties(gamma, sigma2, seed):
    x = _points(seed)
    kern = GaussianKernel(gamma=gamma, sigma2=sigma2)
    k = kern.pairwise(x)
    assert np.allclose(np.diagonal(k), 1.0, atol=1e-8)
    # very peaked kernels underflow to exactly 0 for distant pairs
    assert np.all(k >= 0)
    assert np.all(k <= 1.0 + 1e-10)
    assert np.allclose(k, k.T, atol=1e-10)
    # PSD (Gaussian kernels always are)
    assert np.linalg.eigvalsh(k).min() > -1e-9


@given(pos, seeds)
@settings(max_examples=30, deadline=None)
def test_gaussian_monotone_in_distance(gamma, seed):
    """kappa decreases as points move apart."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(3)
    direction = rng.standard_normal(3)
    direction /= np.linalg.norm(direction)
    kern = GaussianKernel(gamma=gamma)
    vals = [kern(base, base + t * direction) for t in (0.0, 0.5, 1.0, 2.0)]
    assert vals[0] >= vals[1] >= vals[2] >= vals[3]
    assert vals[0] == pytest.approx(1.0, abs=1e-12)


@given(pos, seeds)
@settings(max_examples=30, deadline=None)
def test_laplacian_properties(gamma, seed):
    x = _points(seed)
    kern = LaplacianKernel(gamma=gamma)
    k = kern.pairwise(x)
    assert np.allclose(np.diagonal(k), 1.0, atol=1e-6)
    assert np.all((0 < k) & (k <= 1.0 + 1e-6))
    assert np.allclose(k, k.T, atol=1e-6)


@given(pos, coef, seeds)
@settings(max_examples=30, deadline=None)
def test_sigmoid_bounded(gamma, c, seed):
    x = _points(seed)
    k = SigmoidKernel(gamma=gamma, coef0=c).pairwise(x)
    assert np.all(np.abs(k) <= 1.0)
    assert np.allclose(k, k.T, atol=1e-8)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_linear_kernel_is_inner_product(seed):
    x = _points(seed)
    assert np.allclose(LinearKernel().pairwise(x), x @ x.T)


@given(pos, st.integers(1, 2), seeds)
@settings(max_examples=20, deadline=None)
def test_polynomial_feature_map_identity_random_params(gamma, degree, seed):
    """phi(x).phi(y) == kappa(x, y) for random gamma/degree (the kernel trick)."""
    x = _points(seed, n=6, d=2)
    kern = PolynomialKernel(gamma=gamma, coef0=1.0, degree=degree)
    phi = kern.explicit_feature_map(x)
    assert np.allclose(phi @ phi.T, kern.pairwise(x), rtol=1e-7, atol=1e-8)
