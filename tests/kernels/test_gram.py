"""Tests for the Gram/kernel-matrix pipeline (Sec. 3.2 / 4.2)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gpu import Device
from repro.kernels import (
    GaussianKernel,
    LaplacianKernel,
    device_kernel_matrix,
    gram_matrix,
    kernel_matrix,
)


class TestHostPath:
    def test_gram_matrix(self, rng):
        x = rng.standard_normal((8, 3))
        assert np.allclose(gram_matrix(x), x @ x.T)

    def test_kernel_matrix_poly(self, rng, poly_kernel):
        x = rng.standard_normal((8, 3))
        assert np.allclose(kernel_matrix(x, poly_kernel), (x @ x.T + 1) ** 2, rtol=1e-5)


class TestDevicePath:
    @pytest.mark.parametrize("method", ["gemm", "syrk"])
    def test_matches_host(self, device, rng, poly_kernel, method):
        x = rng.standard_normal((20, 4)).astype(np.float64)
        p = device.h2d(x)
        k_buf, diag, used = device_kernel_matrix(device, p, poly_kernel, method=method)
        assert used == method
        assert np.allclose(k_buf.a, kernel_matrix(x, poly_kernel), rtol=1e-6)
        assert np.allclose(diag.a, np.diagonal(k_buf.a))

    def test_gemm_equals_syrk(self, rng, poly_kernel):
        """Sec. 4.2: both routines produce correct (identical) output."""
        from repro.gpu import A100_80GB

        x = rng.standard_normal((15, 6)).astype(np.float64)
        d1, d2 = Device(A100_80GB), Device(A100_80GB)
        k1, _, _ = device_kernel_matrix(d1, d1.h2d(x), poly_kernel, method="gemm")
        k2, _, _ = device_kernel_matrix(d2, d2.h2d(x), poly_kernel, method="syrk")
        assert np.allclose(k1.a, k2.a, rtol=1e-10)

    def test_gaussian_needs_diag_snapshot(self, device, rng):
        """The Gaussian path must not corrupt the diag it reads in place."""
        kern = GaussianKernel(gamma=0.7)
        x = rng.standard_normal((12, 3)).astype(np.float64)
        p = device.h2d(x)
        k_buf, diag, _ = device_kernel_matrix(device, p, kern)
        assert np.allclose(k_buf.a, kern.pairwise(x), atol=1e-8)
        assert np.allclose(diag.a, 1.0, atol=1e-8)

    def test_auto_dispatch_large_ratio_uses_gemm(self, device, rng, poly_kernel):
        x = rng.standard_normal((300, 2)).astype(np.float32)  # n/d = 150 > 100
        _, _, used = device_kernel_matrix(device, device.h2d(x), poly_kernel, method="auto")
        assert used == "gemm"

    def test_auto_dispatch_small_ratio_uses_syrk(self, device, rng, poly_kernel):
        x = rng.standard_normal((50, 10)).astype(np.float32)  # n/d = 5 < 100
        _, _, used = device_kernel_matrix(device, device.h2d(x), poly_kernel, method="auto")
        assert used == "syrk"

    def test_custom_threshold(self, device, rng, poly_kernel):
        x = rng.standard_normal((50, 10)).astype(np.float32)  # ratio 5
        _, _, used = device_kernel_matrix(
            device, device.h2d(x), poly_kernel, method="auto", threshold=2.0
        )
        assert used == "gemm"

    def test_non_gram_kernel_rejected(self, device, rng):
        x = rng.standard_normal((10, 3)).astype(np.float32)
        with pytest.raises(ShapeError, match="Gram-expressible"):
            device_kernel_matrix(device, device.h2d(x), LaplacianKernel())

    def test_launches_recorded(self, device, rng, poly_kernel):
        x = rng.standard_normal((10, 3)).astype(np.float32)
        device_kernel_matrix(device, device.h2d(x), poly_kernel, method="syrk")
        names = [l.name for l in device.profiler.launches]
        assert "cublas.syrk" in names
        assert "custom.triangular_mirror" in names
        assert "thrust.transform" in names
        assert "custom.diag_extract" in names
