"""Tests for the cosine and rational-quadratic kernels."""

import numpy as np
import pytest

from repro.core import PopcornKernelKMeans
from repro.errors import ConfigError
from repro.gpu import Device, A100_80GB
from repro.kernels import (
    CosineKernel,
    GaussianKernel,
    RationalQuadraticKernel,
    device_kernel_matrix,
    kernel_by_name,
)


class TestCosine:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((10, 4))
        k = CosineKernel().pairwise(x)
        norms = np.linalg.norm(x, axis=1)
        want = (x @ x.T) / np.outer(norms, norms)
        assert np.allclose(k, want, atol=1e-6)

    def test_diagonal_is_one(self, rng):
        x = rng.standard_normal((8, 3))
        assert np.allclose(np.diagonal(CosineKernel().pairwise(x)), 1.0, atol=1e-6)

    def test_bounded(self, rng):
        x = rng.standard_normal((12, 3)) * 100
        k = CosineKernel().pairwise(x)
        assert np.all(np.abs(k) <= 1.0)

    def test_scale_invariant(self, rng):
        x = rng.standard_normal((8, 3))
        k1 = CosineKernel().pairwise(x)
        k2 = CosineKernel().pairwise(7.5 * x)
        assert np.allclose(k1, k2, atol=1e-6)

    def test_zero_vector_safe(self):
        x = np.array([[0.0, 0.0], [1.0, 0.0]])
        k = CosineKernel().pairwise(x)
        assert np.isfinite(k).all()
        assert k[0, 1] == 0.0

    def test_cross_kernel(self, rng):
        x, y = rng.standard_normal((5, 3)), rng.standard_normal((7, 3))
        k = CosineKernel().pairwise(x, y)
        want = (x @ y.T) / np.outer(np.linalg.norm(x, axis=1), np.linalg.norm(y, axis=1))
        assert np.allclose(k, want, atol=1e-6)

    def test_device_pipeline(self, rng):
        """Rides the same GEMM/SYRK + transform path unchanged."""
        x = rng.standard_normal((20, 4)).astype(np.float64)
        dev = Device(A100_80GB)
        k_buf, diag, _ = device_kernel_matrix(dev, dev.h2d(x), CosineKernel())
        assert np.allclose(k_buf.a, CosineKernel().pairwise(x), atol=1e-8)
        assert np.allclose(diag.a, 1.0, atol=1e-8)


class TestRationalQuadratic:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((9, 3))
        kern = RationalQuadraticKernel(alpha=1.5, length_scale=0.8)
        sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
        want = (1.0 + sq / (2 * 1.5 * 0.8**2)) ** (-1.5)
        assert np.allclose(kern.pairwise(x), want, atol=1e-6)

    def test_diagonal_is_one(self, rng):
        x = rng.standard_normal((8, 3))
        k = RationalQuadraticKernel().pairwise(x)
        assert np.allclose(np.diagonal(k), 1.0, atol=1e-6)

    def test_psd(self, rng):
        x = rng.standard_normal((15, 3))
        k = RationalQuadraticKernel(alpha=2.0).pairwise(x.astype(np.float64))
        assert np.linalg.eigvalsh(k).min() > -1e-9

    def test_approaches_gaussian_at_large_alpha(self, rng):
        x = rng.standard_normal((10, 3))
        rq = RationalQuadraticKernel(alpha=1e6, length_scale=1.0).pairwise(x)
        # Gaussian with gamma/sigma2 = 1/(2 l^2) = 0.5
        gauss = GaussianKernel(gamma=0.5, sigma2=1.0).pairwise(x)
        assert np.allclose(rq, gauss, atol=1e-4)

    def test_heavier_tail_than_gaussian(self):
        far = np.array([[0.0], [5.0]])
        rq = RationalQuadraticKernel(alpha=1.0, length_scale=1.0).pairwise(far)[0, 1]
        gauss = GaussianKernel(gamma=0.5).pairwise(far)[0, 1]
        assert rq > gauss

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            RationalQuadraticKernel(alpha=0)
        with pytest.raises(ConfigError):
            RationalQuadraticKernel(length_scale=-1)


class TestIntegration:
    def test_by_name(self):
        assert isinstance(kernel_by_name("cosine"), CosineKernel)
        assert isinstance(kernel_by_name("rational-quadratic"), RationalQuadraticKernel)

    @pytest.mark.parametrize("name", ["cosine", "rational-quadratic"])
    def test_popcorn_fit_runs(self, rng, name, blobs):
        x, _, k = blobs
        m = PopcornKernelKMeans(k, kernel=name, seed=0, max_iter=20).fit(x)
        assert m.labels_.shape == (x.shape[0],)
        h = m.objective_history_
        assert all(h[i + 1] <= h[i] + 1e-4 * abs(h[i]) for i in range(len(h) - 1))

    def test_cosine_clusters_by_direction(self, rng):
        """Cosine kernel clusters rays by angle, ignoring magnitude."""
        angles = np.concatenate([rng.uniform(0, 0.3, 40), rng.uniform(1.5, 1.8, 40)])
        radii = rng.uniform(0.5, 5.0, 80)
        x = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
        truth = (angles > 1.0).astype(np.int32)
        m = PopcornKernelKMeans(2, kernel="cosine", seed=0, init="k-means++",
                                max_iter=50, dtype=np.float64).fit(x)
        from repro.eval import adjusted_rand_index

        assert adjusted_rand_index(m.labels_, truth) == 1.0
