"""Unit tests for the kernel functions."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.kernels import (
    GaussianKernel,
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    kernel_by_name,
)


class TestLinear:
    def test_pairwise_is_gram(self, rng):
        x = rng.standard_normal((10, 4))
        assert np.allclose(LinearKernel().pairwise(x), x @ x.T)

    def test_cross(self, rng):
        x, y = rng.standard_normal((6, 3)), rng.standard_normal((4, 3))
        assert np.allclose(LinearKernel().pairwise(x, y), x @ y.T)

    def test_scalar_call(self):
        assert LinearKernel()([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)


class TestPolynomial:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((8, 3))
        kern = PolynomialKernel(gamma=0.5, coef0=2.0, degree=3)
        got = kern.pairwise(x)
        want = (0.5 * (x @ x.T) + 2.0) ** 3
        assert np.allclose(got, want)

    def test_paper_defaults(self, rng):
        x = rng.standard_normal((5, 2))
        got = PolynomialKernel().pairwise(x)
        want = (x @ x.T + 1.0) ** 2
        assert np.allclose(got, want)

    def test_from_gram_in_place(self, rng):
        x = rng.standard_normal((6, 2))
        b = x @ x.T
        kern = PolynomialKernel()
        out = kern.from_gram(b)
        assert out is b  # in place

    def test_explicit_feature_map_realises_kernel(self, rng):
        """The kernel-trick identity: phi(x).phi(y) == kappa(x, y)."""
        x = rng.standard_normal((7, 3))
        kern = PolynomialKernel(gamma=1.3, coef0=0.7, degree=2)
        phi = kern.explicit_feature_map(x)
        assert np.allclose(phi @ phi.T, kern.pairwise(x.astype(np.float64)), atol=1e-9)

    def test_explicit_feature_map_degree3(self, rng):
        x = rng.standard_normal((5, 2))
        kern = PolynomialKernel(gamma=0.9, coef0=1.5, degree=3)
        phi = kern.explicit_feature_map(x)
        assert np.allclose(phi @ phi.T, kern.pairwise(x.astype(np.float64)), atol=1e-9)

    def test_zero_coef0(self, rng):
        x = rng.standard_normal((5, 2))
        kern = PolynomialKernel(gamma=1.0, coef0=0.0, degree=2)
        phi = kern.explicit_feature_map(x)
        assert np.allclose(phi @ phi.T, kern.pairwise(x.astype(np.float64)), atol=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            PolynomialKernel(degree=0)
        with pytest.raises(ConfigError):
            PolynomialKernel(gamma=-1.0)


class TestGaussian:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((9, 4))
        kern = GaussianKernel(gamma=0.8, sigma2=2.0)
        got = kern.pairwise(x)
        sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
        want = np.exp(-0.8 * sq / 2.0)
        assert np.allclose(got, want, atol=1e-6)

    def test_diagonal_is_one(self, rng):
        x = rng.standard_normal((6, 3))
        k = GaussianKernel(gamma=1.0).pairwise(x)
        assert np.allclose(np.diagonal(k), 1.0, atol=1e-6)

    def test_from_gram_with_external_diag(self, rng):
        x = rng.standard_normal((6, 3))
        b = x @ x.T
        diag = np.ascontiguousarray(np.diagonal(b)).copy()
        kern = GaussianKernel(gamma=0.5)
        got = kern.from_gram(b.copy(), diag)
        assert np.allclose(got, kern.pairwise(x), atol=1e-6)

    def test_from_gram_without_diag_snapshots_it(self, rng):
        x = rng.standard_normal((6, 3))
        b = x @ x.T
        kern = GaussianKernel(gamma=0.5)
        assert np.allclose(kern.from_gram(b.copy()), kern.pairwise(x), atol=1e-6)

    def test_cross_kernel(self, rng):
        x, y = rng.standard_normal((5, 3)), rng.standard_normal((7, 3))
        kern = GaussianKernel(gamma=1.2)
        got = kern.pairwise(x, y)
        sq = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(got, np.exp(-1.2 * sq), atol=1e-6)

    def test_bounded(self, rng):
        x = rng.standard_normal((10, 3)) * 5
        k = GaussianKernel(gamma=2.0).pairwise(x)
        assert np.all(k <= 1.0 + 1e-6)
        assert np.all(k >= 0.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            GaussianKernel(gamma=0.0)
        with pytest.raises(ConfigError):
            GaussianKernel(sigma2=-1.0)

    def test_needs_diag(self):
        assert GaussianKernel().needs_diag()
        assert not PolynomialKernel().needs_diag()


class TestSigmoid:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((8, 3))
        kern = SigmoidKernel(gamma=0.3, coef0=-0.5)
        assert np.allclose(kern.pairwise(x), np.tanh(0.3 * (x @ x.T) - 0.5))

    def test_bounded(self, rng):
        x = rng.standard_normal((8, 3)) * 10
        k = SigmoidKernel().pairwise(x)
        assert np.all(np.abs(k) <= 1.0)


class TestLaplacian:
    def test_matches_definition(self, rng):
        x = rng.standard_normal((7, 4))
        kern = LaplacianKernel(gamma=0.7)
        l1 = np.abs(x[:, None, :] - x[None, :, :]).sum(axis=2)
        assert np.allclose(kern.pairwise(x), np.exp(-0.7 * l1), atol=1e-6)

    def test_not_gram_expressible(self):
        assert not LaplacianKernel().gram_expressible
        with pytest.raises(ShapeError, match="Gram"):
            LaplacianKernel().from_gram(np.eye(3))

    def test_cross(self, rng):
        x, y = rng.standard_normal((4, 3)), rng.standard_normal((6, 3))
        kern = LaplacianKernel(gamma=0.5)
        l1 = np.abs(x[:, None, :] - y[None, :, :]).sum(axis=2)
        assert np.allclose(kern.pairwise(x, y), np.exp(-0.5 * l1), atol=1e-6)


class TestCommon:
    @pytest.mark.parametrize(
        "kern",
        [LinearKernel(), PolynomialKernel(), GaussianKernel(), SigmoidKernel()],
        ids=["linear", "poly", "gauss", "sigmoid"],
    )
    def test_symmetry(self, rng, kern):
        x = rng.standard_normal((8, 3))
        k = kern.pairwise(x)
        assert np.allclose(k, k.T, atol=1e-6)

    @pytest.mark.parametrize(
        "kern",
        [LinearKernel(), PolynomialKernel(), GaussianKernel()],
        ids=["linear", "poly", "gauss"],
    )
    def test_psd(self, rng, kern):
        """PSD kernels: minimum eigenvalue >= -tolerance."""
        x = rng.standard_normal((12, 3))
        k = kern.pairwise(x.astype(np.float64))
        eigs = np.linalg.eigvalsh(k)
        assert eigs.min() > -1e-8 * max(1.0, eigs.max())

    def test_feature_dim_mismatch(self, rng):
        with pytest.raises(ShapeError):
            LinearKernel().pairwise(rng.standard_normal((3, 2)), rng.standard_normal((3, 4)))


class TestKernelByName:
    @pytest.mark.parametrize("name,cls", [
        ("linear", LinearKernel),
        ("polynomial", PolynomialKernel),
        ("gaussian", GaussianKernel),
        ("rbf", GaussianKernel),
        ("sigmoid", SigmoidKernel),
        ("laplacian", LaplacianKernel),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(kernel_by_name(name), cls)

    def test_case_insensitive(self):
        assert isinstance(kernel_by_name("GAUSSIAN"), GaussianKernel)

    def test_params_forwarded(self):
        k = kernel_by_name("polynomial", degree=4)
        assert k.degree == 4

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_by_name("quantum")
