"""Tests for the GEMM/SYRK dispatch rule and its model-driven tuner."""

import pytest

from repro.errors import ConfigError
from repro.gpu import A100_80GB, V100_32GB
from repro.kernels import choose_gram_method, model_gram_times, tune_threshold


class TestChooseMethod:
    def test_default_threshold_is_100(self):
        assert choose_gram_method(10100, 100) == "gemm"  # ratio 101
        assert choose_gram_method(9900, 100) == "syrk"  # ratio 99

    def test_exact_ratio_uses_syrk(self):
        # rule is strictly greater-than (paper: "exceeds a threshold")
        assert choose_gram_method(10000, 100) == "syrk"

    def test_custom_threshold(self):
        assert choose_gram_method(50, 10, threshold=2.0) == "gemm"
        assert choose_gram_method(15, 10, threshold=2.0) == "syrk"

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            choose_gram_method(0, 5)
        with pytest.raises(ConfigError):
            choose_gram_method(5, 0)
        with pytest.raises(ConfigError):
            choose_gram_method(5, 5, threshold=-1)


class TestModelGramTimes:
    def test_both_strategies_positive(self):
        t = model_gram_times(A100_80GB, 20000, 500)
        assert t["gemm"] > 0 and t["syrk"] > 0

    def test_gemm_wins_at_large_ratio(self):
        """Fig. 2: GEMM faster when n/d >> 100."""
        t = model_gram_times(A100_80GB, 50000, 100)
        assert t["gemm"] < t["syrk"]
        # paper reports ~3.2x at this exact shape; accept 2.5-4x
        assert 2.5 < t["syrk"] / t["gemm"] < 4.0

    def test_syrk_wins_at_small_ratio(self):
        """Fig. 2: SYRK faster when d ~ n or larger."""
        t = model_gram_times(A100_80GB, 10000, 10000)
        assert t["syrk"] < t["gemm"]
        # paper reports up to ~2.4x
        assert 1.8 < t["gemm"] / t["syrk"] < 2.8

    def test_syrk_asymptote_large_d(self):
        t = model_gram_times(A100_80GB, 10000, 100000)
        assert 2.0 < t["gemm"] / t["syrk"] < 2.6

    def test_crossover_in_expected_band(self):
        """Winner flips somewhere between n/d = 10 and n/d = 300."""
        n = 30000
        winners = []
        for ratio in (10, 30, 100, 300):
            d = n // ratio
            t = model_gram_times(A100_80GB, n, d)
            winners.append("gemm" if t["gemm"] < t["syrk"] else "syrk")
        assert winners[0] == "syrk"
        assert winners[-1] == "gemm"

    def test_scales_with_device(self):
        a = model_gram_times(A100_80GB, 20000, 1000)
        v = model_gram_times(V100_32GB, 20000, 1000)
        assert v["gemm"] > a["gemm"]  # V100 is slower


class TestTuneThreshold:
    def test_returns_candidate(self):
        ratios = (1, 10, 100, 1000)
        t = tune_threshold(A100_80GB, ratios=ratios)
        assert t in [float(r) for r in ratios]

    def test_tuned_threshold_is_interior(self):
        """The model's optimum is neither 'always GEMM' nor 'always SYRK'."""
        ratios = (1, 3, 10, 30, 100, 300, 1000)
        t = tune_threshold(A100_80GB, ratios=ratios)
        assert ratios[0] < t < ratios[-1]
