"""Tests for the Nyström approximate Kernel K-means extension."""

import numpy as np
import pytest

from repro.approx import NystromKernelKMeans, nystrom_embedding
from repro.data import make_blobs, make_circles
from repro.errors import ConfigError
from repro.eval import adjusted_rand_index
from repro.kernels import GaussianKernel, LinearKernel, PolynomialKernel


class TestEmbedding:
    def test_full_landmarks_reconstruct_kernel(self, rng):
        """With m = n the Nyström approximation is exact."""
        x = rng.standard_normal((40, 3))
        kern = GaussianKernel(gamma=0.8)
        phi, _ = nystrom_embedding(x, kern, 40, rng=rng)
        assert np.allclose(phi @ phi.T, kern.pairwise(x.astype(np.float64)), atol=1e-6)

    def test_error_decreases_with_landmarks(self, rng):
        x = rng.standard_normal((120, 4))
        kern = GaussianKernel(gamma=0.5)
        k_true = kern.pairwise(x.astype(np.float64))
        errs = []
        for m in (10, 40, 120):
            phi, _ = nystrom_embedding(x, kern, m, rng=np.random.default_rng(0))
            errs.append(np.linalg.norm(phi @ phi.T - k_true) / np.linalg.norm(k_true))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-6

    def test_embedding_dim_bounded_by_rank(self, rng):
        """Linear kernel over d-dim points has rank <= d."""
        x = rng.standard_normal((50, 3))
        phi, _ = nystrom_embedding(x, LinearKernel(), 30, rng=rng)
        assert phi.shape[1] <= 4  # rank <= d (+ round-off slack)

    def test_landmarks_are_valid_indices(self, rng):
        x = rng.standard_normal((30, 2))
        _, lm = nystrom_embedding(x, PolynomialKernel(), 10, rng=rng)
        assert len(lm) == 10
        assert lm.min() >= 0 and lm.max() < 30
        assert len(np.unique(lm)) == 10

    def test_invalid_m(self, rng):
        x = rng.standard_normal((10, 2))
        with pytest.raises(ConfigError):
            nystrom_embedding(x, LinearKernel(), 0)
        with pytest.raises(ConfigError):
            nystrom_embedding(x, LinearKernel(), 11)


class TestNystromEstimator:
    def test_circles_solved(self):
        x, y = make_circles(400, rng=7)
        m = NystromKernelKMeans(
            2, n_landmarks=100, kernel=GaussianKernel(gamma=5.0), seed=0
        ).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.95

    def test_blobs(self):
        x, y = make_blobs(150, 4, 3, rng=3)
        m = NystromKernelKMeans(3, n_landmarks=50, seed=0).fit(x)
        assert adjusted_rand_index(m.labels_, y) > 0.9

    def test_attributes(self, rng):
        x = rng.standard_normal((60, 3)).astype(np.float32)
        m = NystromKernelKMeans(4, n_landmarks=20, seed=1).fit(x)
        assert m.labels_.shape == (60,)
        assert m.embedding_.shape[0] == 60
        assert m.landmarks_.shape == (20,)
        assert m.inertia_ >= 0

    def test_landmarks_clamped_to_n(self, rng):
        x = rng.standard_normal((15, 2)).astype(np.float32)
        m = NystromKernelKMeans(3, n_landmarks=1000, seed=0).fit(x)
        assert m.landmarks_.shape == (15,)

    def test_fit_predict(self, rng):
        x = rng.standard_normal((40, 3)).astype(np.float32)
        m = NystromKernelKMeans(3, n_landmarks=15, seed=0)
        assert np.array_equal(m.fit_predict(x), m.labels_)

    def test_validation(self):
        with pytest.raises(ConfigError):
            NystromKernelKMeans(0)
        with pytest.raises(ConfigError):
            NystromKernelKMeans(2, n_landmarks=0)
