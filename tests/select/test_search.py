"""The model-selection layer: grid expansion, CV scoring, search semantics."""

import numpy as np
import pytest

from repro import PopcornKernelKMeans, clone
from repro.data import make_blobs, make_circles
from repro.errors import ConfigError, NotFittedError
from repro.kernels import GaussianKernel
from repro.select import (
    SCORERS,
    GridSearchKernelKMeans,
    ParameterGrid,
    cross_validate,
)


def _circles(n=200, seed=0):
    x, y = make_circles(n, rng=seed)
    return x, y


class TestParameterGrid:
    def test_product_expansion(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_list_of_grids_concatenates(self):
        grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
        assert list(grid) == [{"a": 1}, {"b": 2}, {"b": 3}]

    def test_scalar_values_rejected(self):
        with pytest.raises(ConfigError, match="sequence"):
            ParameterGrid({"a": 1})
        with pytest.raises(ConfigError, match="sequence"):
            ParameterGrid({"a": "host"})
        with pytest.raises(ConfigError, match="empty"):
            ParameterGrid({"a": []})


class TestCrossValidate:
    def test_supervised_scoring_uses_heldout_predictions(self):
        x, y = make_blobs(60, 3, 3, rng=0)
        result = cross_validate(
            PopcornKernelKMeans(3, dtype=np.float64, seed=0, max_iter=10),
            x,
            y,
            cv=3,
        )
        assert result["scoring"] == "ari"
        assert result["test_score"].shape == (3,)
        assert result["mean_test_score"] > 0.5  # blobs are easy

    def test_label_free_scoring_defaults_to_objective(self):
        x, _ = make_blobs(50, 3, 2, rng=1)
        result = cross_validate(PopcornKernelKMeans(2, seed=0, max_iter=5), x, cv=2)
        assert result["scoring"] == "objective"
        assert np.all(np.isfinite(result["test_score"]))

    def test_original_estimator_never_mutated(self):
        x, y = make_blobs(40, 3, 2, rng=2)
        est = PopcornKernelKMeans(2, seed=0, max_iter=5)
        cross_validate(est, x, y, cv=2)
        assert not hasattr(est, "labels_")

    def test_metric_scoring_without_y_rejected(self):
        x, _ = make_blobs(40, 3, 2, rng=2)
        with pytest.raises(ConfigError, match="ground-truth"):
            cross_validate(PopcornKernelKMeans(2), x, scoring="ari")

    def test_validation(self):
        x, y = make_blobs(40, 3, 2, rng=2)
        with pytest.raises(ConfigError, match="cv"):
            cross_validate(PopcornKernelKMeans(2), x, y, cv=1)
        with pytest.raises(ConfigError, match="scoring"):
            cross_validate(PopcornKernelKMeans(2), x, y, scoring="f1")
        with pytest.raises(ConfigError, match="labels"):
            cross_validate(PopcornKernelKMeans(2), x, y[:-1])


class TestGridSearch:
    def test_bandwidth_sweep_finds_the_separating_gamma(self):
        x, y = _circles()
        search = GridSearchKernelKMeans(
            "popcorn",
            {
                "n_clusters": [2],
                "backend": ["host"],
                "dtype": [np.float64],
                "kernel": [GaussianKernel(gamma=g) for g in (0.5, 5.0)],
                "init": ["k-means++"],
                "max_iter": [20],
                "seed": [0],
            },
            scoring="ari",
            cv=2,
        ).fit(x, y)
        assert search.best_params_["kernel"].gamma == 5.0
        assert search.n_candidates_ == 2
        assert search.n_fits_ == 4
        assert search.cv_results_["rank_test_score"][search.best_index_] == 1
        assert search.predict(x).shape == (x.shape[0],)

    def test_registry_name_accepts_nested_kernel_params(self):
        """The README headline flow: registry name + kernel__gamma grid."""
        x, y = _circles(n=120)
        search = GridSearchKernelKMeans(
            "popcorn",
            {"n_clusters": [2], "kernel__gamma": [0.5, 5.0], "max_iter": [10],
             "dtype": [np.float64], "kernel": ["gaussian"], "seed": [0]},
            scoring="ari",
            cv=2,
        ).fit(x, y)
        assert search.best_params_["kernel__gamma"] == 5.0

    def test_estimator_instance_template_cloned_per_candidate(self):
        x, y = make_blobs(50, 3, 2, rng=0)
        template = PopcornKernelKMeans(2, dtype=np.float64, seed=0, max_iter=8)
        search = GridSearchKernelKMeans(
            template, {"kernel__gamma": [0.5, 1.0]}, cv=2
        ).fit(x, y)
        assert not hasattr(template, "labels_")
        assert template.kernel.gamma == 1.0  # never mutated
        assert set(search.best_params_) == {"kernel__gamma"}

    def test_process_parallel_matches_serial(self):
        x, y = _circles(n=120)
        grid = {
            "n_clusters": [2],
            "backend": ["host"],
            "dtype": [np.float64],
            "kernel": [GaussianKernel(gamma=g) for g in (2.0, 5.0)],
            "max_iter": [8],
            "seed": [0],
        }
        serial = GridSearchKernelKMeans("popcorn", grid, cv=2, n_jobs=1).fit(x, y)
        parallel = GridSearchKernelKMeans("popcorn", grid, cv=2, n_jobs=2).fit(x, y)
        assert np.allclose(
            serial.cv_results_["mean_test_score"],
            parallel.cv_results_["mean_test_score"],
        )
        assert repr(serial.best_params_) == repr(parallel.best_params_)

    def test_refit_false_has_no_best_estimator(self):
        x, y = make_blobs(40, 3, 2, rng=0)
        search = GridSearchKernelKMeans(
            PopcornKernelKMeans(2, seed=0, max_iter=5),
            {"kernel__gamma": [1.0]},
            cv=2,
            refit=False,
        ).fit(x, y)
        assert not hasattr(search, "best_estimator_")
        with pytest.raises(NotFittedError):
            search.predict(x)

    def test_predict_before_fit_raises(self):
        search = GridSearchKernelKMeans("popcorn", {"n_clusters": [2]})
        with pytest.raises(NotFittedError):
            search.predict(np.zeros((3, 2)))

    def test_label_free_search_over_registry_name(self):
        x, _ = make_blobs(50, 3, 3, rng=4)
        search = GridSearchKernelKMeans(
            "lloyd", {"n_clusters": [2, 3, 4], "seed": [0]}, cv=2
        ).fit(x)
        assert search.scoring_ == "objective"
        assert search.best_params_["n_clusters"] in (2, 3, 4)

    def test_works_via_clone_for_every_scorer(self):
        x, y = make_blobs(45, 3, 3, rng=5)
        est = PopcornKernelKMeans(3, dtype=np.float64, seed=0, max_iter=6)
        for scoring in sorted(SCORERS):
            search = GridSearchKernelKMeans(
                clone(est), {"kernel__gamma": [1.0]}, cv=2, scoring=scoring
            ).fit(x, y)
            assert np.isfinite(search.best_score_), scoring

    def test_validation(self):
        with pytest.raises(ConfigError, match="scoring"):
            GridSearchKernelKMeans("popcorn", {"n_clusters": [2]}, scoring="f1")
        with pytest.raises(ConfigError, match="mapping"):
            GridSearchKernelKMeans("popcorn", [1, 2])
        x, y = make_blobs(30, 3, 2, rng=0)
        with pytest.raises(ConfigError, match="estimator"):
            GridSearchKernelKMeans(object(), {"a": [1]}).fit(x, y)
