"""Extension — online mini-batch partial_fit (shim).

The online engine (``repro.engine.minibatch``) folds arriving batches
into the selection matrix and centroid norms with per-cluster
learning-rate counts instead of refitting from scratch.  The registry
entry compares clustering quality and update throughput against the
full-batch fit; the shim times a real streamed fit and re-asserts the
cold-start contract — the first full-data ``partial_fit`` call is one
full-fit iteration, bit for bit.
"""

import numpy as np

from paperfig import run_registered
from repro.core import PopcornKernelKMeans


def test_minibatch(benchmark):
    run_registered("ext_minibatch")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((300, 8)).astype(np.float64)

    def run():
        est = PopcornKernelKMeans(
            5, backend="host", dtype=np.float64, batch_size=60, seed=0
        )
        est.partial_fit(x)
        est.partial_fit(x[:120])
        return est

    online = benchmark(run)
    assert online.n_batches_seen_ == 7  # 5 cold-call batches + 2 streamed

    one_iter = PopcornKernelKMeans(
        5, backend="host", dtype=np.float64, max_iter=1, seed=0
    ).fit(x)
    cold = PopcornKernelKMeans(5, backend="host", dtype=np.float64, seed=0).partial_fit(x)
    assert np.array_equal(one_iter.labels_, cold.labels_)
    assert one_iter.objective_ == cold.objective_
