"""Extension — performance portability across GPU generations (Sec. 4.5).

The paper argues that offloading to cuSPARSE/cuBLAS makes Popcorn's
performance portable: "future improvements to cuSPARSE and cuBLAS will
automatically lead to performance improvements in Popcorn."  This bench
sweeps the device model over V100 / A100 / H100 for an MNIST-shaped
workload and checks the generational ordering of every figure-7-style
quantity.
"""

from paperfig import ITERS, emit
from repro.gpu import A100_80GB, H100_80GB, V100_32GB
from repro.modeling import model_baseline, model_popcorn

SPECS = (V100_32GB, A100_80GB, H100_80GB)
WORKLOAD = (60000, 780, 100)  # mnist at k=100


def test_ext_device_sweep(benchmark):
    n, d, k = WORKLOAD
    rows = []
    totals = []
    speedups = []
    for spec in SPECS:
        pop = model_popcorn(n, d, k, iters=ITERS, spec=spec)
        base = model_baseline(n, d, k, iters=ITERS, spec=spec)
        s = base.total_s / pop.total_s
        totals.append(pop.total_s)
        speedups.append(s)
        rows.append(
            (spec.name, f"{pop.total_s:.3f}", f"{base.total_s:.3f}", f"{s:.2f}x",
             f"{pop.profiler.achieved_gflops('cusparse.spmm'):.0f}")
        )
    emit(
        "ext_device_sweep",
        ["device", "popcorn_s", "baseline_s", "speedup", "spmm_gflops"],
        rows,
        "performance portability: same code across GPU generations (modeled)",
    )

    # newer generation -> faster Popcorn, with no code change
    assert totals[0] > totals[1] > totals[2]
    # the SpMM-vs-handwritten advantage survives every generation
    assert all(s > 1.3 for s in speedups)

    benchmark(lambda: model_popcorn(n, d, k, iters=ITERS, spec=H100_80GB).total_s)
