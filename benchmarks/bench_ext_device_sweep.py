"""Extension — performance portability across GPU generations (shim).

The paper argues that offloading to cuSPARSE/cuBLAS makes Popcorn's
performance portable: "future improvements to cuSPARSE and cuBLAS will
automatically lead to performance improvements in Popcorn."  The
registry entry sweeps the device model over V100 / A100 / H100 for an
MNIST-shaped workload; the shim times the model evaluation itself.
"""

from paperfig import ITERS, run_registered
from repro.bench.experiments.extensions import DEVICE_SWEEP_WORKLOAD
from repro.gpu import H100_80GB
from repro.modeling import model_popcorn


def test_ext_device_sweep(benchmark):
    run_registered("ext_device_sweep")

    n, d, k = DEVICE_SWEEP_WORKLOAD
    benchmark(lambda: model_popcorn(n, d, k, iters=ITERS, spec=H100_80GB).total_s)
