"""Figure 2 — GEMM vs SYRK kernel-matrix computation (registry shim).

The paper sweeps n in {50000, 10000} x d in {100, 1000, 10000, 100000}
and finds GEMM up to 3.2x faster at large n/d, SYRK up to 2.4x faster at
small n/d, with the crossover near n/d = 100.  The registry entry
regenerates the modeled series at the paper's sizes; the shim *executes*
both strategies at a laptop scale to verify they produce identical
kernel matrices.
"""

import numpy as np

from paperfig import run_registered
from repro.gpu import A100_80GB, Device
from repro.kernels import PolynomialKernel, device_kernel_matrix


def test_fig2_gemm_vs_syrk(benchmark):
    run_registered("fig2")

    # executing cross-check at laptop scale: identical K from both paths
    rng = np.random.default_rng(0)
    x = rng.standard_normal((256, 32)).astype(np.float64)

    def both():
        d1, d2 = Device(A100_80GB), Device(A100_80GB)
        k1, _, _ = device_kernel_matrix(d1, d1.h2d(x), PolynomialKernel(), method="gemm")
        k2, _, _ = device_kernel_matrix(d2, d2.h2d(x), PolynomialKernel(), method="syrk")
        return k1.a, k2.a

    k1, k2 = benchmark(both)
    assert np.allclose(k1, k2, rtol=1e-10)
