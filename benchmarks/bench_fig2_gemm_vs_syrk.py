"""Figure 2 — GEMM vs SYRK kernel-matrix computation on synthetic data.

The paper sweeps n in {50000, 10000} x d in {100, 1000, 10000, 100000}
and finds GEMM up to 3.2x faster at large n/d, SYRK up to 2.4x faster at
small n/d, with the crossover near n/d = 100.  The bench regenerates the
modeled series at the paper's sizes and *executes* both strategies at a
laptop scale to verify they produce identical kernel matrices.
"""

import numpy as np
import pytest

from paperfig import emit
from repro.gpu import A100_80GB, Device
from repro.kernels import PolynomialKernel, device_kernel_matrix, model_gram_times

N_VALUES = (50000, 10000)
D_VALUES = (100, 1000, 10000, 100000)


def test_fig2_gemm_vs_syrk(benchmark):
    rows = []
    for n in N_VALUES:
        for d in D_VALUES:
            t = model_gram_times(A100_80GB, n, d)
            winner = "GEMM" if t["gemm"] < t["syrk"] else "SYRK"
            rows.append(
                (n, d, f"{n / d:.2f}", f"{t['gemm']:.4f}", f"{t['syrk']:.4f}",
                 winner, f"{max(t.values()) / min(t.values()):.2f}x")
            )
    emit(
        "fig2",
        ["n", "d", "n/d", "gemm_s", "syrk_s", "winner", "ratio"],
        rows,
        "kernel matrix: GEMM vs SYRK (modeled, A100)",
    )

    # shape assertions (paper Sec. 5.2)
    t_big = model_gram_times(A100_80GB, 50000, 100)
    assert t_big["gemm"] < t_big["syrk"]
    t_small = model_gram_times(A100_80GB, 10000, 10000)
    assert t_small["syrk"] < t_small["gemm"]

    # executing cross-check at laptop scale: identical K from both paths
    rng = np.random.default_rng(0)
    x = rng.standard_normal((256, 32)).astype(np.float64)

    def both():
        d1, d2 = Device(A100_80GB), Device(A100_80GB)
        k1, _, _ = device_kernel_matrix(d1, d1.h2d(x), PolynomialKernel(), method="gemm")
        k2, _, _ = device_kernel_matrix(d2, d2.h2d(x), PolynomialKernel(), method="syrk")
        return k1.a, k2.a

    k1, k2 = benchmark(both)
    assert np.allclose(k1, k2, rtol=1e-10)
