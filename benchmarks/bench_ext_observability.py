"""Extension — runtime observability layer (shim).

``repro.obs`` records hierarchical wall-clock spans and process-wide
metrics behind a disabled-by-default gate.  The registry entry pins the
span-tree shape of a fixed workload and measures the tracing overhead;
the shim benchmarks the *untraced* fit (the default everyone else pays)
and re-asserts the per-fit span contract on a traced run.
"""

import numpy as np

from paperfig import run_registered
from repro.core import PopcornKernelKMeans
from repro.obs import trace


def test_observability(benchmark):
    run_registered("ext_observability")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((300, 8)).astype(np.float64)

    def fit():
        return PopcornKernelKMeans(
            5,
            backend="host",
            dtype=np.float64,
            max_iter=5,
            check_convergence=False,
            seed=0,
        ).fit(x)

    est = benchmark(fit)  # tracer off: the zero-cost default path
    assert est.trace_ == {}

    was_enabled = trace.enabled
    trace.enable()
    try:
        traced = fit()
    finally:
        trace.enabled = was_enabled
    assert traced.trace_["fit.iter"]["count"] == 5
    for phase in ("fit.distances", "fit.argmin", "fit.update", "fit.inertia"):
        assert traced.trace_[phase]["count"] == 5
    assert np.array_equal(est.labels_, traced.labels_)  # tracing never steers
