"""Figure 4 — Popcorn's pairwise-distance speedup over the baseline.

Distance phase only (excludes the kernel matrix, as in the paper).
Paper band: 1.5-2.6x, except SCOTUS at k = 50 where n = 6400 starves the
SpMM and the speedup collapses to ~1.1x.  The bench regenerates the
modeled series and times the real SpMM+SpMV distance step at small scale.
"""

import numpy as np

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.baselines import random_labels
from repro.core import popcorn_distances_host
from repro.kernels import PolynomialKernel, kernel_matrix
from repro.modeling import model_baseline, model_popcorn


def test_fig4_distances_speedup(benchmark):
    rows = []
    speed = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            p = model_popcorn(n, d, k, iters=ITERS).phase_s("distances")
            b = model_baseline(n, d, k, iters=ITERS).phase_s("distances")
            s = b / p
            speed[(name, k)] = s
            rows.append((name, k, f"{b:.4f}", f"{p:.4f}", f"{s:.2f}x"))
    emit(
        "fig4",
        ["dataset", "k", "baseline_s", "popcorn_s", "speedup"],
        rows,
        "pairwise-distance phase: Popcorn over baseline (modeled)",
    )

    # shape assertions (paper Sec. 5.5)
    for (name, k), s in speed.items():
        if name == "scotus":
            assert s < 1.5, (name, k, s)  # the small-n anomaly
        else:
            assert 1.4 <= s <= 2.7, (name, k, s)
    # speedup grows from k=10 to k=50 on the large datasets
    for name in ("acoustic", "cifar10", "mnist"):
        assert speed[(name, 50)] > speed[(name, 10)]

    # real distance-step timing at small scale
    rng = np.random.default_rng(1)
    x = rng.standard_normal((400, 16))
    km = kernel_matrix(x, PolynomialKernel())
    labels = random_labels(400, 10, rng)
    d_mat, _ = benchmark(lambda: popcorn_distances_host(km, labels, 10))
    assert d_mat.shape == (400, 10)
