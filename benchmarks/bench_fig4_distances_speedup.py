"""Figure 4 — Popcorn's pairwise-distance speedup (registry shim).

Distance phase only (excludes the kernel matrix, as in the paper).
Paper band: 1.5-2.6x, except SCOTUS at k = 50 where n = 6400 starves the
SpMM and the speedup collapses to ~1.1x.  The registry entry regenerates
the modeled series; the shim times the real SpMM+SpMV distance step at
small scale.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import popcorn_distances_host
from repro.kernels import PolynomialKernel, kernel_matrix


def test_fig4_distances_speedup(benchmark):
    run_registered("fig4")

    # real distance-step timing at small scale
    rng = np.random.default_rng(1)
    x = rng.standard_normal((400, 16))
    km = kernel_matrix(x, PolynomialKernel())
    labels = random_labels(400, 10, rng)
    d_mat, _ = benchmark(lambda: popcorn_distances_host(km, labels, 10))
    assert d_mat.shape == (400, 10)
