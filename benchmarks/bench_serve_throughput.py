"""Extension — micro-batched out-of-sample serving throughput (shim).

The registry entry fits a Popcorn model, round-trips it through the
``repro.serve`` artifact format, and drives the micro-batching
:class:`~repro.serve.PredictionService` over a repeating query stream,
sweeping the batch size; the tracked ``throughput.serve_qps`` metric is
what ``repro-bench compare`` gates prediction latency on.  The shim
re-runs the full-mode sweep, then times one batched serving pass with
pytest-benchmark and verifies the serving acceptance contract: served
labels are bit-identical to the fitting estimator's in-memory
``predict``.
"""

import numpy as np

from paperfig import run_registered
from repro.core import PopcornKernelKMeans
from repro.serve import PredictionService


def test_serve_throughput_sweep(benchmark):
    run_registered("serve_throughput")

    # executing serving pass, timed: batched labels == in-memory predict
    rng = np.random.default_rng(0)
    x = rng.standard_normal((200, 6))
    model = PopcornKernelKMeans(
        4, dtype=np.float64, backend="host", max_iter=5, check_convergence=False, seed=0
    ).fit(x)
    queries = rng.standard_normal((128, 6))
    reference = model.predict(queries)

    def run():
        with PredictionService(model, batch_size=32, max_delay_ms=1.0) as svc:
            return svc.predict_many(queries)

    served = benchmark(run)
    assert np.array_equal(served, reference)
