"""Extension — sharded engine backend strong scaling (shim).

The registry entry executes ``backend="sharded:<g>"`` through the shared
engine for g in {1, 2, 4, 8}, pins bit-identical labels against the host
backend, and gates the modeled makespan/comm metrics; this shim times one
sharded fit and re-verifies the bit-exactness contract at small scale.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans


def test_ext_strong_scaling(benchmark):
    run_registered("ext_strong_scaling")

    rng = np.random.default_rng(9)
    x = rng.standard_normal((120, 8)).astype(np.float64)
    init = random_labels(120, 4, rng)

    def run():
        return PopcornKernelKMeans(
            4, backend="sharded:4", dtype=np.float64, max_iter=5,
            check_convergence=False, seed=0,
        ).fit(x, init_labels=init)

    sharded = benchmark(run)
    host = PopcornKernelKMeans(
        4, backend="host", dtype=np.float64, max_iter=5,
        check_convergence=False, seed=0,
    ).fit(x, init_labels=init)
    assert np.array_equal(sharded.labels_, host.labels_)
    assert len(sharded.device_profilers_) == 4
    assert sharded.comm_profiler_.count_of("comm.allreduce") == sharded.n_iter_
