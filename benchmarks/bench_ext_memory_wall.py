"""Extension — four ways past the kernel-matrix memory wall (shim).

Standard Popcorn stores the full n x n kernel matrix (80 GB caps a single
A100 at n ~ 141k points in FP32).  The registry entry charts the modeled
cost of the strategies this library implements for larger n (resident
Popcorn, the row-tiled engine, on-the-fly panels, distributed) and
asserts the crossover structure; the shim executes the blocked paths at
small scale and verifies they agree bit for bit.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import OnTheFlyKernelKMeans, PopcornKernelKMeans


def test_ext_memory_wall(benchmark):
    run_registered("ext_memory_wall")

    # executing equivalence of the blocked paths, timed
    rng = np.random.default_rng(0)
    x = rng.standard_normal((120, 6)).astype(np.float64)
    init = random_labels(120, 4, rng)

    def run():
        return OnTheFlyKernelKMeans(
            4, block_rows=32, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)

    otf = benchmark(run)
    std = PopcornKernelKMeans(4, dtype=np.float64, max_iter=5,
                              check_convergence=False).fit(x, init_labels=init)
    tiled_exec = PopcornKernelKMeans(4, dtype=np.float64, tile_rows=32, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
    assert np.array_equal(otf.labels_, std.labels_)
    assert np.array_equal(tiled_exec.labels_, std.labels_)
