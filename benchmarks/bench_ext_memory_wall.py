"""Extension — four ways past the kernel-matrix memory wall.

Standard Popcorn stores the full n x n kernel matrix (80 GB caps a single
A100 at n ~ 141k points in FP32).  This bench charts the modeled cost of
the strategies this library implements for larger n:

1. **Popcorn** (baseline; infeasible once 4 n^2 exceeds capacity),
2. **row-tiled engine** (single GPU, K streamed from host memory —
   ``PopcornKernelKMeans(tile_rows=...)``; pays PCIe traffic; the only
   exact single-GPU option for precomputed / non-Gram kernels),
3. **on-the-fly panels** (single GPU, recomputes K — O(n^2 d)/iteration),
4. **distributed** (g GPUs, partitions K — pays communication).

What used to be a failure demo (``AllocationError`` beyond n ~ 141k) is
now a scaling curve: the tiled engine column keeps producing numbers at
every n.  The crossover structure — recompute wins at moderate d,
streaming wins at high d or when K cannot be recomputed — is the
decision guide a practitioner needs.
"""

import numpy as np

from paperfig import emit
from repro.core import OnTheFlyKernelKMeans, PopcornKernelKMeans, model_onthefly
from repro.baselines import random_labels
from repro.distributed import model_distributed_popcorn
from repro.gpu import A100_80GB
from repro.modeling import model_popcorn, model_popcorn_tiled

CAPACITY = A100_80GB.mem_capacity_gb * 1e9
TILE = 8192


def test_ext_memory_wall(benchmark):
    d, k = 780, 100
    rows = []
    for n in (50000, 100000, 141000, 200000, 400000):
        k_bytes = 4.0 * n * n
        fits = k_bytes <= CAPACITY * 0.9
        pop = model_popcorn(n, d, k, include_transfer=False).total_s if fits else None
        tiled = model_popcorn_tiled(
            n, d, k, tile_rows=TILE, include_transfer=False
        ).total_s
        otf = model_onthefly(n, d, k)
        dist4 = model_distributed_popcorn(n, d, k, 4)
        rows.append(
            (n, f"{k_bytes / 1e9:.0f}", "yes" if fits else "NO",
             f"{pop:.2f}" if pop else "-",
             f"{tiled:.2f}",
             f"{otf['total_s']:.2f}", f"{otf['peak_bytes'] / 1e9:.2f}",
             f"{dist4['makespan_s']:.2f}")
        )
    emit(
        "ext_memory_wall",
        ["n", "K_GB", "K_fits_1gpu", "popcorn_s", "tiled_s", "onthefly_s",
         "onthefly_peak_GB", "distributed4_s"],
        rows,
        "past the kernel-matrix memory wall (modeled, d=780, k=100)",
    )

    # structure: when K fits, popcorn beats recompute; when it doesn't,
    # the fallbacks still run, and 4-GPU distribution beats recompute
    pop_small = model_popcorn(50000, d, k, include_transfer=False).total_s
    otf_small = model_onthefly(50000, d, k)["total_s"]
    assert pop_small < otf_small
    big = 200000
    assert 4.0 * big * big > CAPACITY  # popcorn infeasible
    tiled_big = model_popcorn_tiled(big, d, k, tile_rows=TILE, include_transfer=False)
    otf_big = model_onthefly(big, d, k)
    dist_big = model_distributed_popcorn(big, d, k, 4)
    assert 4.0 * TILE * big < CAPACITY  # the tile footprint fits at any n
    assert np.isfinite(tiled_big.total_s)
    assert otf_big["peak_bytes"] < CAPACITY
    assert dist_big["makespan_s"] < otf_big["total_s"]
    # streaming is not free: tiled pays over resident popcorn where both run
    assert model_popcorn_tiled(50000, d, k, tile_rows=TILE,
                               include_transfer=False).total_s > pop_small
    # tiled-vs-recompute crossover is set by d: re-streaming K over PCIe
    # costs ~4 bytes/entry/iter regardless of d, while recomputing it
    # costs O(d) FLOPs/entry/iter — so recompute wins at moderate d and
    # streaming wins for high-dimensional data (and it is the *only*
    # single-GPU exact option when K is precomputed / not Gram-expressible)
    assert otf_big["total_s"] < tiled_big.total_s  # d=780: recompute wins
    hi_d = 4000
    assert (
        model_popcorn_tiled(big, hi_d, k, tile_rows=TILE, include_transfer=False).total_s
        < model_onthefly(big, hi_d, k)["total_s"]
    )  # d=4000: streaming wins

    # executing equivalence of the blocked paths, timed
    rng = np.random.default_rng(0)
    x = rng.standard_normal((120, 6)).astype(np.float64)
    init = random_labels(120, 4, rng)

    def run():
        return OnTheFlyKernelKMeans(
            4, block_rows=32, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)

    otf = benchmark(run)
    std = PopcornKernelKMeans(4, dtype=np.float64, max_iter=5,
                              check_convergence=False).fit(x, init_labels=init)
    tiled_exec = PopcornKernelKMeans(4, dtype=np.float64, tile_rows=32, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
    assert np.array_equal(otf.labels_, std.labels_)
    assert np.array_equal(tiled_exec.labels_, std.labels_)
