"""Extension — three ways past the kernel-matrix memory wall.

Standard Popcorn stores the full n x n kernel matrix (80 GB caps a single
A100 at n ~ 141k points in FP32).  This bench charts the modeled cost of
the three strategies this library implements for larger n:

1. **Popcorn** (baseline; infeasible once 4 n^2 exceeds capacity),
2. **on-the-fly panels** (single GPU, recomputes K — O(n^2 d)/iteration),
3. **distributed** (g GPUs, partitions K — pays communication).

The crossover structure is the decision guide a practitioner needs.
"""

import numpy as np

from paperfig import emit
from repro.core import OnTheFlyKernelKMeans, PopcornKernelKMeans, model_onthefly
from repro.baselines import random_labels
from repro.distributed import model_distributed_popcorn
from repro.gpu import A100_80GB
from repro.modeling import model_popcorn

CAPACITY = A100_80GB.mem_capacity_gb * 1e9


def test_ext_memory_wall(benchmark):
    d, k = 780, 100
    rows = []
    for n in (50000, 100000, 141000, 200000, 400000):
        k_bytes = 4.0 * n * n
        fits = k_bytes <= CAPACITY * 0.9
        pop = model_popcorn(n, d, k, include_transfer=False).total_s if fits else None
        otf = model_onthefly(n, d, k)
        dist4 = model_distributed_popcorn(n, d, k, 4)
        rows.append(
            (n, f"{k_bytes / 1e9:.0f}", "yes" if fits else "NO",
             f"{pop:.2f}" if pop else "-",
             f"{otf['total_s']:.2f}", f"{otf['peak_bytes'] / 1e9:.2f}",
             f"{dist4['makespan_s']:.2f}")
        )
    emit(
        "ext_memory_wall",
        ["n", "K_GB", "K_fits_1gpu", "popcorn_s", "onthefly_s",
         "onthefly_peak_GB", "distributed4_s"],
        rows,
        "past the kernel-matrix memory wall (modeled, d=780, k=100)",
    )

    # structure: when K fits, popcorn beats recompute; when it doesn't,
    # both fallbacks still run, and 4-GPU distribution beats recompute
    pop_small = model_popcorn(50000, d, k, include_transfer=False).total_s
    otf_small = model_onthefly(50000, d, k)["total_s"]
    assert pop_small < otf_small
    big = 200000
    assert 4.0 * big * big > CAPACITY  # popcorn infeasible
    otf_big = model_onthefly(big, d, k)
    dist_big = model_distributed_popcorn(big, d, k, 4)
    assert otf_big["peak_bytes"] < CAPACITY
    assert dist_big["makespan_s"] < otf_big["total_s"]

    # executing equivalence of the blocked path, timed
    rng = np.random.default_rng(0)
    x = rng.standard_normal((120, 6)).astype(np.float64)
    init = random_labels(120, 4, rng)

    def run():
        return OnTheFlyKernelKMeans(
            4, block_rows=32, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)

    otf = benchmark(run)
    std = PopcornKernelKMeans(4, dtype=np.float64, max_iter=5,
                              check_convergence=False).fit(x, init_labels=init)
    assert np.array_equal(otf.labels_, std.labels_)
