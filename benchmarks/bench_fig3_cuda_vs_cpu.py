"""Figure 3 — baseline CUDA speedup over the CPU PRMLT (registry shim).

The paper reports 11-72.8x, largest for the letter dataset and growing
with k (load imbalance hits the CPU's interpreted per-cluster loop harder
than the GPU).  The registry entry regenerates the modeled series at
paper scale; the shim executes both engines at small scale to confirm
identical clustering.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import BaselineCUDAKernelKMeans, PRMLTKernelKMeans, random_labels


def test_fig3_cuda_vs_cpu(benchmark):
    run_registered("fig3")

    # executing equivalence at small scale
    rng = np.random.default_rng(0)
    x = rng.standard_normal((80, 6)).astype(np.float64)
    init = random_labels(80, 4, rng)

    def run_both():
        g = BaselineCUDAKernelKMeans(4, dtype=np.float64, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
        c = PRMLTKernelKMeans(4, max_iter=5, check_convergence=False).fit(x, init_labels=init)
        return g.labels_, c.labels_

    gl, cl = benchmark(run_both)
    assert np.array_equal(gl, cl)
