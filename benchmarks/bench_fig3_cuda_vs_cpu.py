"""Figure 3 — baseline CUDA implementation speedup over the CPU (PRMLT).

The paper reports 11-72.8x, largest for the letter dataset and growing
with k (load imbalance hits the CPU's interpreted per-cluster loop harder
than the GPU).  The bench regenerates the modeled series at paper scale
and executes both engines at small scale to confirm identical clustering.
"""

import numpy as np

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.baselines import BaselineCUDAKernelKMeans, PRMLTKernelKMeans, random_labels
from repro.modeling import model_baseline, model_cpu


def test_fig3_cuda_vs_cpu(benchmark):
    rows = []
    speedups = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            cpu_t = model_cpu(n, d, k, iters=ITERS).total_s
            gpu_t = model_baseline(n, d, k, iters=ITERS).total_s
            s = cpu_t / gpu_t
            speedups[(name, k)] = s
            rows.append((name, k, f"{cpu_t:.2f}", f"{gpu_t:.4f}", f"{s:.1f}x"))
    emit(
        "fig3",
        ["dataset", "k", "cpu_s", "gpu_baseline_s", "speedup"],
        rows,
        "baseline CUDA speedup over CPU PRMLT (modeled)",
    )

    # shape assertions
    all_s = list(speedups.values())
    assert min(all_s) >= 10 and max(all_s) <= 80
    best = max(speedups, key=speedups.get)
    assert best[0] == "letter"  # paper: letter peaks at 72.8x
    for name in DATASETS:
        assert speedups[(name, 100)] > speedups[(name, 10)]  # grows with k

    # executing equivalence at small scale
    rng = np.random.default_rng(0)
    x = rng.standard_normal((80, 6)).astype(np.float64)
    init = random_labels(80, 4, rng)

    def run_both():
        g = BaselineCUDAKernelKMeans(4, dtype=np.float64, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
        c = PRMLTKernelKMeans(4, max_iter=5, check_convergence=False).fit(x, init_labels=init)
        return g.labels_, c.labels_

    gl, cl = benchmark(run_both)
    assert np.array_equal(gl, cl)
