"""Figure 8 — runtime breakdown of Popcorn per dataset and k (shim).

Phases: kernel-matrix computation, pairwise distances (SpMM + SpMV), and
argmin + cluster update, summed over 30 iterations.  The paper excludes
the letter dataset from the plot (its runtimes are tiny) — the registry
entry includes it in the CSV but asserts the paper's structural claims
on the others: large-d datasets (ledgar, scotus) are kernel-matrix
dominated; large-n small-d datasets (acoustic, mnist) are distance
dominated; argmin + update is trivial everywhere.
"""

from paperfig import run_registered
from repro.core import PopcornKernelKMeans
from repro.data import make_blobs


def test_fig8_breakdown(benchmark):
    run_registered("fig8")

    # real breakdown collection at small scale
    x, _ = make_blobs(200, 8, 5, rng=0)

    def fit():
        return PopcornKernelKMeans(5, seed=0, max_iter=10,
                                   check_convergence=False).fit(x)

    m = benchmark(fit)
    assert set(m.timings_) >= {"kernel_matrix", "distances", "argmin_update"}
