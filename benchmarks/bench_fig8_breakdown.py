"""Figure 8 — runtime breakdown of Popcorn per dataset and k.

Phases: kernel-matrix computation, pairwise distances (SpMM + SpMV), and
argmin + cluster update, summed over 30 iterations.  The paper excludes
the letter dataset from the plot (its runtimes are tiny) — we include it
in the CSV but assert the paper's structural claims on the others:
large-d datasets (ledgar, scotus) are kernel-matrix dominated; large-n
small-d datasets (acoustic, mnist) are distance dominated; argmin +
update is trivial everywhere.
"""

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.core import PopcornKernelKMeans
from repro.data import make_blobs
from repro.modeling import model_popcorn


def test_fig8_breakdown(benchmark):
    rows = []
    shares = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            m = model_popcorn(n, d, k, iters=ITERS, include_transfer=False)
            km = m.phase_s("kernel_matrix")
            dist = m.phase_s("distances")
            upd = m.phase_s("argmin_update")
            tot = km + dist + upd
            shares[(name, k)] = (km / tot, dist / tot, upd / tot)
            rows.append(
                (name, k, f"{km:.4f}", f"{dist:.4f}", f"{upd:.5f}",
                 f"{km / tot * 100:.1f}%", f"{dist / tot * 100:.1f}%",
                 f"{upd / tot * 100:.1f}%")
            )
    emit(
        "fig8",
        ["dataset", "k", "kernel_matrix_s", "distances_s", "argmin_update_s",
         "K_share", "dist_share", "update_share"],
        rows,
        "Popcorn runtime breakdown over 30 iterations (modeled)",
    )

    # structural claims of Sec. 5.7
    for name in ("ledgar", "scotus"):
        for k in K_VALUES:
            km, dist, _ = shares[(name, k)]
            assert km > dist, (name, k)
    for name in ("acoustic", "letter"):
        for k in K_VALUES:
            km, dist, _ = shares[(name, k)]
            assert dist > km, (name, k)
    for key, (_, _, upd) in shares.items():
        assert upd < 0.12, key  # "trivial for all datasets"

    # real breakdown collection at small scale
    x, _ = make_blobs(200, 8, 5, rng=0)

    def fit():
        return PopcornKernelKMeans(5, seed=0, max_iter=10,
                                   check_convergence=False).fit(x)

    m = benchmark(fit)
    assert set(m.timings_) >= {"kernel_matrix", "distances", "argmin_update"}
