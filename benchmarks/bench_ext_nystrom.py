"""Extension — Nyström approximate Kernel K-means (related-work direction).

Sweeps the landmark count and reports clustering quality (ARI against
ground truth on the circles dataset) plus the kernel-approximation error,
demonstrating the quality/cost dial the approximation exposes.
"""

import numpy as np

from paperfig import emit
from repro.approx import NystromKernelKMeans, nystrom_embedding
from repro.data import make_circles
from repro.eval import adjusted_rand_index
from repro.kernels import GaussianKernel


def test_ext_nystrom_quality_sweep(benchmark):
    x, y = make_circles(600, rng=1)
    kern = GaussianKernel(gamma=5.0)
    k_true = kern.pairwise(x.astype(np.float64))
    rows = []
    aris = []
    for m in (10, 25, 50, 100, 200):
        phi, _ = nystrom_embedding(x, kern, m, rng=np.random.default_rng(0))
        err = float(np.linalg.norm(phi @ phi.T - k_true) / np.linalg.norm(k_true))
        model = NystromKernelKMeans(2, n_landmarks=m, kernel=kern, seed=0).fit(x)
        ari = adjusted_rand_index(model.labels_, y)
        aris.append(ari)
        rows.append((m, f"{err:.4f}", f"{ari:.3f}", phi.shape[1]))
    emit(
        "ext_nystrom",
        ["landmarks", "kernel_rel_error", "ARI", "embedding_dim"],
        rows,
        "Nystrom approximate kernel k-means on circles (executed)",
    )

    # enough landmarks solve the task exactly
    assert max(aris[-2:]) > 0.95
    # kernel approximation error decreases monotonically with landmarks
    errs = [float(r[1]) for r in rows]
    assert errs[0] > errs[-1]

    benchmark(
        lambda: NystromKernelKMeans(2, n_landmarks=50, kernel=kern, seed=0).fit(x).labels_
    )
