"""Extension — Nyström approximate Kernel K-means (shim).

Sweeps the landmark count and reports clustering quality (ARI against
ground truth on the circles dataset) plus the kernel-approximation error,
demonstrating the quality/cost dial the approximation exposes.
"""

from paperfig import run_registered
from repro.approx import NystromKernelKMeans
from repro.data import make_circles
from repro.kernels import GaussianKernel


def test_ext_nystrom_quality_sweep(benchmark):
    run_registered("ext_nystrom")

    x, _ = make_circles(600, rng=1)
    kern = GaussianKernel(gamma=5.0)
    benchmark(
        lambda: NystromKernelKMeans(2, n_landmarks=50, kernel=kern, seed=0).fit(x).labels_
    )
