"""Ablation — the GEMM/SYRK dispatch threshold t (Sec. 4.2).

The paper leaves t architecture-dependent and calibrates t = 100 on
their A100.  This bench sweeps t over the model and reports the total
Gram time the dispatch would accumulate over a representative (n, d)
grid, per device generation.
"""

from paperfig import emit
from repro.gpu import A100_80GB, H100_80GB, V100_32GB
from repro.kernels import model_gram_times, tune_threshold

GRID_N = (10000, 20000, 50000)
RATIOS = (1, 3, 10, 30, 100, 300, 1000)


def _total_time_for_threshold(spec, t):
    total = 0.0
    for n in GRID_N:
        for r in RATIOS:
            d = max(1, int(round(n / r)))
            times = model_gram_times(spec, n, d)
            total += times["gemm"] if n / d > t else times["syrk"]
    return total


def test_ablation_dispatch_threshold(benchmark):
    rows = []
    for spec in (V100_32GB, A100_80GB, H100_80GB):
        for t in RATIOS:
            rows.append((spec.name, t, f"{_total_time_for_threshold(spec, t):.3f}"))
        best = tune_threshold(spec, n_values=GRID_N, ratios=RATIOS)
        rows.append((spec.name, "tuned", f"{_total_time_for_threshold(spec, best):.3f} (t*={best:g})"))
    emit(
        "ablation_threshold",
        ["device", "threshold_t", "total_gram_time_s"],
        rows,
        "dispatch-threshold sweep (modeled; paper leaves t tunable)",
    )

    # degenerate thresholds must not beat the tuned one on the A100
    best = tune_threshold(A100_80GB, n_values=GRID_N, ratios=RATIOS)
    t_best = _total_time_for_threshold(A100_80GB, best)
    assert t_best <= _total_time_for_threshold(A100_80GB, 0.5)  # always-GEMM
    assert t_best <= _total_time_for_threshold(A100_80GB, 10**9)  # always-SYRK

    benchmark(lambda: tune_threshold(A100_80GB, n_values=GRID_N, ratios=RATIOS))
