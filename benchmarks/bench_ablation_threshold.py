"""Ablation — the GEMM/SYRK dispatch threshold t (Sec. 4.2) (shim).

The paper leaves t architecture-dependent and calibrates t = 100 on
their A100.  The registry entry sweeps t over the model and reports the
total Gram time the dispatch would accumulate over a representative
(n, d) grid, per device generation; the shim times the tuner itself.
"""

from paperfig import run_registered
from repro.bench.experiments.ablations import THRESHOLD_GRID_N, THRESHOLD_RATIOS
from repro.gpu import A100_80GB
from repro.kernels import tune_threshold


def test_ablation_dispatch_threshold(benchmark):
    run_registered("ablation_threshold")

    benchmark(lambda: tune_threshold(A100_80GB, n_values=THRESHOLD_GRID_N,
                                     ratios=THRESHOLD_RATIOS))
