"""Extension — async serving front door (shim).

``ext_async_serving`` gates the deterministic half of the front door
(burst coalescing counts, exact admission-control shedding, the modeled
autoscale curve); the shim benchmarks one inline async burst end to end
and re-asserts the coalescing contract on the executed path.
"""

import asyncio

import numpy as np

from paperfig import run_registered
from repro.serve import AsyncPredictionServer, load_model, save_model


def test_async_serving(benchmark, tmp_path):
    run_registered("ext_async_serving")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((300, 8)).astype(np.float64)
    from repro import PopcornKernelKMeans

    model = PopcornKernelKMeans(
        4, backend="host", dtype=np.float64, max_iter=5,
        check_convergence=False, seed=0,
    ).fit(x)
    model = load_model(save_model(model, str(tmp_path / "m.npz")))
    queries = rng.standard_normal((24, 8))
    reference = model.predict(queries)

    async def burst():
        async with AsyncPredictionServer(
            model, batch_size=24, max_delay_ms=1.0, n_workers=1, cache_size=0,
        ) as server:
            futures = [
                server.submit_nowait(queries[i])
                for _ in range(3)
                for i in range(24)
            ]
            results = await asyncio.gather(*futures)
            return np.asarray(results[:24], dtype=np.int32), server.stats()

    labels, stats = benchmark(lambda: asyncio.run(burst()))
    assert np.array_equal(labels, reference)  # async path never steers
    assert stats["backend_rows"] == 24  # 72 requests coalesce to 24 rows
    assert stats["coalesced"] == 48
    assert stats["requests"] == stats["served"] + stats["shed"] + stats["errors"]
