"""Extension — registry-driven grid-search throughput (shim).

The registry entry sweeps the Gaussian bandwidth of an exact kernel
k-means over the concentric-circles workload through
:class:`repro.select.GridSearchKernelKMeans` (clone-based candidates,
``make_estimator`` construction, held-out ARI scoring) and tracks
``throughput.model_selection_fits_per_s`` through the perf gate.  The
shim re-runs the full-mode sweep, then times one small search with
pytest-benchmark and verifies the selection contract: the search refits
its winner and predicts with it.
"""

import numpy as np

from paperfig import run_registered
from repro.data import make_circles
from repro.kernels import GaussianKernel
from repro.select import GridSearchKernelKMeans


def test_model_selection_search(benchmark):
    run_registered("model_selection")

    x, y = make_circles(120, rng=0)

    def run():
        return GridSearchKernelKMeans(
            "popcorn",
            {
                "n_clusters": [2],
                "backend": ["host"],
                "dtype": [np.float64],
                "kernel": [GaussianKernel(gamma=g) for g in (2.0, 5.0)],
                "max_iter": [10],
                "seed": [0],
            },
            scoring="ari",
            cv=2,
        ).fit(x, y)

    search = benchmark(run)
    assert search.best_params_["kernel"].gamma in (2.0, 5.0)
    labels = search.predict(x)
    assert labels.shape == (x.shape[0],)
    assert set(np.unique(labels)) <= {0, 1}
