"""Extension — spectral clustering via weighted Kernel K-means.

The Sec. 2.2 equivalence (Dhillon et al.) as a measurable pipeline:
normalized-cut quality on planted-partition graphs across mixing rates,
plus the moons geometry where the graph view beats the radial kernel.
"""

import networkx as nx
import numpy as np

from paperfig import emit
from repro import PopcornKernelKMeans, SpectralKernelKMeans
from repro.data import make_moons
from repro.eval import adjusted_rand_index
from repro.graph import cluster_graph
from repro.kernels import GaussianKernel


def test_ext_spectral(benchmark):
    rows = []
    aris = {}
    for p_out in (0.01, 0.05, 0.10, 0.20):
        g = nx.planted_partition_graph(4, 25, p_in=0.5, p_out=p_out, seed=1)
        truth = np.repeat(np.arange(4), 25)
        labels = cluster_graph(g, 4, seed=0)
        ari = adjusted_rand_index(labels, truth)
        aris[p_out] = ari
        rows.append(("planted(4x25)", f"p_out={p_out}", f"{ari:.3f}"))

    x, y = make_moons(300, rng=3)
    plain = PopcornKernelKMeans(
        2, kernel=GaussianKernel(gamma=20.0), seed=0, init="k-means++", max_iter=100
    ).fit(x)
    spect = SpectralKernelKMeans(2, seed=0).fit(x)
    plain_ari = adjusted_rand_index(plain.labels_, y)
    spect_ari = adjusted_rand_index(spect.labels_, y)
    rows.append(("moons", "plain kernel k-means", f"{plain_ari:.3f}"))
    rows.append(("moons", "spectral (kNN + weighted KKM)", f"{spect_ari:.3f}"))
    emit(
        "ext_spectral",
        ["task", "setting", "ARI"],
        rows,
        "spectral clustering via weighted kernel k-means (executed)",
    )

    # quality degrades gracefully with community mixing, perfect when clean
    assert aris[0.01] == 1.0
    assert aris[0.01] >= aris[0.20]
    # the graph view dominates the radial view on moons
    assert spect_ari > plain_ari + 0.5
    assert spect_ari > 0.95

    x2, y2 = make_moons(200, rng=1)
    labels = benchmark(lambda: SpectralKernelKMeans(2, seed=0).fit(x2).labels_)
    assert adjusted_rand_index(labels, y2) > 0.9
