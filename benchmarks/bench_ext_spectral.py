"""Extension — spectral clustering via weighted Kernel K-means (shim).

The Sec. 2.2 equivalence (Dhillon et al.) as a measurable pipeline:
normalized-cut quality on planted-partition graphs across mixing rates,
plus the moons geometry where the graph view beats the radial kernel.
"""

from paperfig import run_registered
from repro import SpectralKernelKMeans
from repro.data import make_moons
from repro.eval import adjusted_rand_index


def test_ext_spectral(benchmark):
    run_registered("ext_spectral")

    x2, y2 = make_moons(200, rng=1)
    labels = benchmark(lambda: SpectralKernelKMeans(2, seed=0).fit(x2).labels_)
    assert adjusted_rand_index(labels, y2) > 0.9
