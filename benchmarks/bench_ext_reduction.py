"""Extension — the chunked fused-argmin reduction engine (shim).

The reduction engine (``repro.engine.reduction``) chunks both the sample
and cluster axes and fuses the row argmin into the panel sweep, so the
full ``n x k`` distance block is never materialised — each worker holds
one ``chunk_rows x chunk_cols`` panel plus a running best/argbest pair.
The registry entry compares modeled makespans against the legacy
row-tiled pipeline across a thread sweep and checks the executed path is
bit-exact; the shim times a real chunked fit and verifies the labels
match the monolithic run for a deliberately awkward chunk schedule.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans


def test_reduction_engine(benchmark):
    run_registered("ext_reduction_engine")

    # executed equivalence, timed: the chunked fused sweep must not
    # change the labels for any chunk shape or thread count
    rng = np.random.default_rng(0)
    x = rng.standard_normal((150, 8)).astype(np.float32)
    init = random_labels(150, 5, rng)

    def run():
        return PopcornKernelKMeans(
            5,
            backend="host",
            chunk_rows=48,
            chunk_cols=2,
            n_threads=2,
            max_iter=5,
            check_convergence=False,
        ).fit(x, init_labels=init)

    chunked_est = benchmark(run)
    mono_est = PopcornKernelKMeans(5, backend="host", max_iter=5, check_convergence=False).fit(
        x, init_labels=init
    )
    assert np.array_equal(chunked_est.labels_, mono_est.labels_)
