"""Ablation — centroid norms: SpMV z-gather vs diag(V K V^T) SpGEMM (shim).

Sec. 3.3's optimisation claim: the z-gather SpMV needs O(n) work where
the naive route needs O(n k) past the SpMM.  Both routes are exact; the
registry entry records the modeled device times at paper scale; the shim
measures the real wall-clock of each on the same operands.
"""

import numpy as np

from paperfig import run_registered
from repro.core import build_selection, centroid_norms_spgemm, centroid_norms_spmv
from repro.sparse import spmm


def test_ablation_norm_routes(benchmark):
    run_registered("ablation_norms")

    # real numerics: both routes exactly equal; time the SpMV route
    rng = np.random.default_rng(0)
    n_small, k_small = 800, 64
    x = rng.standard_normal((n_small, 8))
    k_mat = x @ x.T
    labels = rng.integers(0, k_small, n_small).astype(np.int32)
    v = build_selection(labels, k_small, dtype=np.float64)
    kvt = np.ascontiguousarray(spmm(v, k_mat).T)

    spmv_norms = benchmark(lambda: centroid_norms_spmv(kvt, v, labels))
    spgemm_norms = centroid_norms_spgemm(k_mat, v)
    assert np.allclose(spmv_norms, spgemm_norms, atol=1e-9)
