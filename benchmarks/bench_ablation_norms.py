"""Ablation — centroid norms: SpMV z-gather vs diag(V K V^T) SpGEMM.

Sec. 3.3's optimisation claim: the z-gather SpMV needs O(n) work where
the naive route needs O(n k) past the SpMM.  Both routes are exact; the
bench measures the real wall-clock of each on growing k and records the
modeled device times at paper scale.
"""

import numpy as np

from paperfig import emit
from repro.core import build_selection, centroid_norms_spgemm, centroid_norms_spmv
from repro.gpu import A100_80GB, cost
from repro.sparse import spmm, spgemm_flops, transpose


def test_ablation_norm_routes(benchmark):
    # modeled comparison at paper scale
    rows = []
    n = 60000
    for k in (10, 50, 100, 500):
        spmv_t = cost.spmv_cost(A100_80GB, n, k).time_s + cost.zgather_cost(A100_80GB, n, k).time_s
        # naive route: SpGEMM (V K) V^T needs n*k multiplies past the SpMM
        spgemm_t = cost.spgemm_cost(A100_80GB, n, k, mults=float(n) * k).time_s
        rows.append((n, k, f"{spmv_t * 1e6:.1f}", f"{spgemm_t * 1e6:.1f}",
                     f"{spgemm_t / spmv_t:.1f}x"))
    emit(
        "ablation_norms",
        ["n", "k", "spmv_route_us", "spgemm_route_us", "spmv_advantage"],
        rows,
        "centroid norms: O(n) SpMV vs O(nk) SpGEMM diag (modeled)",
    )
    # the advantage grows with k (that's the whole point of Sec. 3.3)
    advantages = [float(r[4][:-1]) for r in rows]
    assert advantages[-1] > advantages[0]

    # real numerics: both routes exactly equal; time the SpMV route
    rng = np.random.default_rng(0)
    n_small, k_small = 800, 64
    x = rng.standard_normal((n_small, 8))
    k_mat = x @ x.T
    labels = rng.integers(0, k_small, n_small).astype(np.int32)
    v = build_selection(labels, k_small, dtype=np.float64)
    kvt = np.ascontiguousarray(spmm(v, k_mat).T)

    spmv_norms = benchmark(lambda: centroid_norms_spmv(kvt, v, labels))
    spgemm_norms = centroid_norms_spgemm(k_mat, v)
    assert np.allclose(spmv_norms, spgemm_norms, atol=1e-9)
