"""Ablation — what sparsity buys: SpMM(V, K) vs a dense one-hot GEMM (shim).

V is k x n with n nonzeros; treating it as a dense matrix (the natural
formulation without the paper's insight) turns the O(n^2) SpMM into an
O(n^2 k) GEMM.  The registry entry models the gap at paper scale; the
shim measures the real wall-clock of both on the same operands.
"""

import numpy as np

from paperfig import run_registered
from repro.core import selection_dense
from repro.sparse import selection_matrix, spmm


def test_ablation_dense_vs_sparse(benchmark):
    run_registered("ablation_dense_vs_sparse")

    # real wall-clock on the same operands
    rng = np.random.default_rng(0)
    n_small, k_small = 1500, 40
    labels = rng.integers(0, k_small, n_small).astype(np.int32)
    k_mat = rng.standard_normal((n_small, n_small))
    v_sparse = selection_matrix(labels, k_small, dtype=np.float64)
    v_dense = selection_dense(labels, k_small)

    sparse_out = benchmark(lambda: spmm(v_sparse, k_mat))
    dense_out = v_dense @ k_mat
    assert np.allclose(sparse_out, dense_out, atol=1e-8)
