"""Ablation — what sparsity buys: SpMM(V, K) vs a dense one-hot GEMM.

V is k x n with n nonzeros; treating it as a dense matrix (the natural
formulation without the paper's insight) turns the O(n^2) SpMM into an
O(n^2 k) GEMM.  This bench measures the real wall-clock of both on the
same operands and the modeled gap at paper scale.
"""

import numpy as np

from paperfig import emit
from repro.core import selection_dense
from repro.gpu import A100_80GB, cost
from repro.sparse import selection_matrix, spmm


def _dense_gemm_cost(spec, n, k):
    """Modeled dense (k x n) @ (n x n) GEMM, the sparsity-free alternative."""
    flops = 2.0 * k * n * n
    bytes_ = 4.0 * (k * n + n * n + k * n)
    from repro.gpu.calibration import gemm_compute_efficiency

    t = cost.roofline_time(
        spec, flops, bytes_, eff_compute=gemm_compute_efficiency(n, n),
        eff_memory=0.85, lib_call=True,
    )
    return t


def test_ablation_dense_vs_sparse(benchmark):
    rows = []
    for n in (10000, 50000):
        for k in (10, 50, 100):
            sp = cost.spmm_cost(A100_80GB, n, k).time_s
            de = _dense_gemm_cost(A100_80GB, n, k)
            rows.append((n, k, f"{sp * 1e3:.3f}", f"{de * 1e3:.3f}", f"{de / sp:.1f}x"))
    emit(
        "ablation_dense_vs_sparse",
        ["n", "k", "spmm_ms", "dense_gemm_ms", "sparse_advantage"],
        rows,
        "V as sparse CSR vs dense one-hot GEMM (modeled)",
    )

    # the sparse advantage grows linearly-ish with k
    adv_k10 = float(rows[3][4][:-1])
    adv_k100 = float(rows[5][4][:-1])
    assert adv_k100 > adv_k10 * 3

    # real wall-clock on the same operands
    rng = np.random.default_rng(0)
    n_small, k_small = 1500, 40
    labels = rng.integers(0, k_small, n_small).astype(np.int32)
    k_mat = rng.standard_normal((n_small, n_small))
    v_sparse = selection_matrix(labels, k_small, dtype=np.float64)
    v_dense = selection_dense(labels, k_small)

    sparse_out = benchmark(lambda: spmm(v_sparse, k_mat))
    dense_out = v_dense @ k_mat
    assert np.allclose(sparse_out, dense_out, atol=1e-8)
