"""Extension — the modeled cost of the engine's row-tiled pipeline.

The row-tiled distance pipeline (``tile_rows=``) streams the kernel
matrix over PCIe instead of keeping it resident, so memory drops from
O(n^2) to O(tile_rows * n) while the per-iteration SpMM stays bit-exact.
This bench sweeps ``tile_rows`` at fixed n and charts the throughput
price of streaming against monolithic Popcorn:

* the H2D re-streaming of K dominates once tiles shrink (PCIe bandwidth
  versus HBM bandwidth — a ~80x gap on the A100 testbed);
* larger tiles amortise per-launch overheads, so the overhead ratio
  falls monotonically toward the streaming floor.

The practitioner's decision rule: use the largest ``tile_rows`` that
fits, and expect the modeled slowdown printed here.
"""

import numpy as np

from paperfig import ITERS, emit
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans
from repro.modeling import model_popcorn, model_popcorn_tiled

N, D, K = 50000, 780, 100


def test_engine_tiling_sweep(benchmark):
    mono = model_popcorn(N, D, K, iters=ITERS, include_transfer=False)
    rows = []
    ratios = []
    for tile in (1024, 4096, 16384, 50000):
        tiled = model_popcorn_tiled(
            N, D, K, tile_rows=tile, iters=ITERS, include_transfer=False
        )
        ratio = tiled.total_s / mono.total_s
        ratios.append(ratio)
        peak_gb = 4.0 * tile * N / 1e9
        rows.append(
            (tile, f"{peak_gb:.2f}", f"{tiled.total_s:.2f}",
             f"{tiled.phase_s('transfer'):.2f}", f"{ratio:.2f}")
        )
    rows.append(("resident", f"{4.0 * N * N / 1e9:.2f}", f"{mono.total_s:.2f}",
                 f"{mono.phase_s('transfer'):.2f}", "1.00"))
    emit(
        "ext_engine_tiling",
        ["tile_rows", "peak_K_GB", "total_s", "transfer_s", "vs_monolithic"],
        rows,
        f"row-tiled vs monolithic Popcorn (modeled, n={N}, d={D}, k={K})",
    )

    # structure: streaming always costs something, and the overhead falls
    # monotonically as tiles grow (fixed overheads amortise)
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios, reverse=True)
    # the streaming floor is the PCIe/HBM bandwidth gap (~80x on the A100
    # testbed): re-reading K over PCIe each iteration cannot cost more
    # than that relative to the resident SpMM
    assert ratios[-1] < 80.0

    # executing equivalence, timed: tiling must not change the labels
    rng = np.random.default_rng(0)
    x = rng.standard_normal((150, 8)).astype(np.float32)
    init = random_labels(150, 5, rng)

    def run():
        return PopcornKernelKMeans(
            5, tile_rows=64, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)

    tiled_est = benchmark(run)
    mono_est = PopcornKernelKMeans(5, max_iter=5, check_convergence=False).fit(
        x, init_labels=init
    )
    assert np.array_equal(tiled_est.labels_, mono_est.labels_)
    assert tiled_est.timings_["transfer"] > mono_est.timings_["transfer"]
