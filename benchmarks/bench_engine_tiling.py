"""Extension — the modeled cost of the engine's row-tiled pipeline (shim).

The row-tiled distance pipeline (``tile_rows=``) streams the kernel
matrix over PCIe instead of keeping it resident, so memory drops from
O(n^2) to O(tile_rows * n) while the per-iteration SpMM stays bit-exact.
The registry entry sweeps ``tile_rows`` at fixed n and charts the
throughput price of streaming against monolithic Popcorn; the shim
executes tiled-vs-monolithic at small scale and verifies label equality.

The practitioner's decision rule: use the largest ``tile_rows`` that
fits, and expect the modeled slowdown printed here.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans


def test_engine_tiling_sweep(benchmark):
    run_registered("ext_engine_tiling")

    # executing equivalence, timed: tiling must not change the labels
    rng = np.random.default_rng(0)
    x = rng.standard_normal((150, 8)).astype(np.float32)
    init = random_labels(150, 5, rng)

    def run():
        return PopcornKernelKMeans(
            5, tile_rows=64, max_iter=5, check_convergence=False
        ).fit(x, init_labels=init)

    tiled_est = benchmark(run)
    mono_est = PopcornKernelKMeans(5, max_iter=5, check_convergence=False).fit(
        x, init_labels=init
    )
    assert np.array_equal(tiled_est.labels_, mono_est.labels_)
    assert tiled_est.timings_["transfer"] > mono_est.timings_["transfer"]
