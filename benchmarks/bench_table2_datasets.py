"""Table 2 — the evaluation datasets.

Prints the table verbatim and benchmarks the synthetic stand-in
generator at a laptop-safe scale (the generator is what every executing
experiment in this reproduction consumes).
"""

import numpy as np

from paperfig import DATASETS, emit
from repro.data import TABLE2, generate


def test_table2_datasets(benchmark):
    rows = [
        (i.name, i.description, i.n, i.d)
        for i in TABLE2.values()
    ]
    emit("table2", ["Dataset", "Description", "n", "d"], rows, "evaluation datasets")

    # sanity: stand-ins materialise with the right shapes at small scale
    for name, (n, d) in DATASETS.items():
        x, y = generate(name, scale=0.002, rng=0)
        assert x.ndim == 2 and x.dtype == np.float32

    x, _ = benchmark(lambda: generate("mnist", scale=0.01, rng=0))
    assert x.shape[0] == 600
