"""Table 2 — the evaluation datasets (registry shim over ``table2``).

Prints the table verbatim and benchmarks the synthetic stand-in
generator at a laptop-safe scale (the generator is what every executing
experiment in this reproduction consumes).
"""

import numpy as np

from paperfig import DATASETS, run_registered
from repro.data import generate


def test_table2_datasets(benchmark):
    run_registered("table2")

    # sanity: stand-ins materialise with the right shapes at small scale
    for name, (n, d) in DATASETS.items():
        x, y = generate(name, scale=0.002, rng=0)
        assert x.ndim == 2 and x.dtype == np.float32

    x, _ = benchmark(lambda: generate("mnist", scale=0.01, rng=0))
    assert x.shape[0] == 600
