"""Figure 6 — roofline placement of Popcorn's SpMM vs the baseline kernel.

For every dataset and k the paper plots (arithmetic intensity, achieved
GFLOP/s) against the A100 roofline; Popcorn sits closer to the roof
(especially at k in {50, 100}) even though its AI can be *lower* than the
baseline's (cuSPARSE SpMM skips shared-memory staging, Sec. 5.5).
"""

import numpy as np

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.core import distances_intensity, kernel_matrix_intensity
from repro.gpu import A100_80GB, attainable_gflops, op_point
from repro.modeling import model_baseline, model_popcorn


def test_fig6_roofline(benchmark):
    rows = []
    fractions = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            pop = model_popcorn(n, d, k, iters=ITERS)
            base = model_baseline(n, d, k, iters=ITERS)
            p_pt = op_point(A100_80GB, pop.profiler, "cusparse.spmm")
            b_pt = op_point(A100_80GB, base.profiler, "baseline.k1_cluster_reduce")
            fractions[(name, k)] = (p_pt.fraction_of_roof, b_pt.fraction_of_roof)
            rows.append(
                (name, k,
                 f"{p_pt.arithmetic_intensity:.3f}", f"{p_pt.achieved_gflops:.0f}",
                 f"{p_pt.fraction_of_roof:.2f}",
                 f"{b_pt.arithmetic_intensity:.3f}", f"{b_pt.achieved_gflops:.0f}",
                 f"{b_pt.fraction_of_roof:.2f}")
            )
    emit(
        "fig6",
        ["dataset", "k", "pop_AI", "pop_gflops", "pop_frac_of_roof",
         "base_AI", "base_gflops", "base_frac_of_roof"],
        rows,
        "roofline placement of the dominant kernels (modeled)",
    )

    # shape assertions (paper Sec. 5.5)
    for name, (n, d) in DATASETS.items():
        for k in (50, 100):
            p_frac, b_frac = fractions[(name, k)]
            assert p_frac > b_frac, (name, k)  # Popcorn closer to the roof
            if n > 10000:
                assert p_frac > 0.55, (name, k)  # "almost hits the roofline"
    # Popcorn's AI is lower than the baseline's (more off-chip traffic)
    pop = model_popcorn(60000, 780, 100, iters=ITERS)
    base = model_baseline(60000, 780, 100, iters=ITERS)
    assert (
        pop.profiler.arithmetic_intensity("cusparse.spmm")
        < base.profiler.arithmetic_intensity("baseline.k1_cluster_reduce")
    )
    # Eq. 16/17 closed forms agree with the model's traffic accounting to ~2x
    ai_formula = distances_intensity(60000, 100)
    ai_model = pop.profiler.arithmetic_intensity("cusparse.spmm")
    assert 0.5 < ai_formula / ai_model < 2.0

    series = benchmark(lambda: [attainable_gflops(A100_80GB, ai) for ai in np.logspace(-2, 3, 512)])
    assert max(series) == A100_80GB.peak_fp32_gflops
