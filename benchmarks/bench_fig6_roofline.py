"""Figure 6 — roofline placement of Popcorn's SpMM vs baseline (shim).

For every dataset and k the paper plots (arithmetic intensity, achieved
GFLOP/s) against the A100 roofline; Popcorn sits closer to the roof
(especially at k in {50, 100}) even though its AI can be *lower* than the
baseline's (cuSPARSE SpMM skips shared-memory staging, Sec. 5.5).
"""

import numpy as np

from paperfig import run_registered
from repro.gpu import A100_80GB, attainable_gflops


def test_fig6_roofline(benchmark):
    run_registered("fig6")

    series = benchmark(
        lambda: [attainable_gflops(A100_80GB, ai) for ai in np.logspace(-2, 3, 512)]
    )
    assert max(series) == A100_80GB.peak_fp32_gflops
