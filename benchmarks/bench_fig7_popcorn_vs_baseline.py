"""Figure 7 — end-to-end Popcorn speedup over the baseline CUDA engine.

Kernel matrix (with Popcorn's GEMM/SYRK dispatch vs the baseline's
GEMM-only) plus 30 clustering iterations.  Paper band: 1.6-2.6x across
all datasets and k.
"""

import numpy as np

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.baselines import BaselineCUDAKernelKMeans, random_labels
from repro.core import PopcornKernelKMeans
from repro.modeling import model_baseline, model_popcorn


def test_fig7_popcorn_vs_baseline(benchmark):
    rows = []
    speed = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            p = model_popcorn(n, d, k, iters=ITERS).total_s
            b = model_baseline(n, d, k, iters=ITERS).total_s
            s = b / p
            speed[(name, k)] = s
            rows.append((name, k, f"{b:.4f}", f"{p:.4f}", f"{s:.2f}x"))
    emit(
        "fig7",
        ["dataset", "k", "baseline_s", "popcorn_s", "speedup"],
        rows,
        "end-to-end Popcorn speedup over baseline CUDA (modeled)",
    )

    # paper band: 1.6-2.6x (we accept 1.4-2.7 as shape fidelity)
    for key, s in speed.items():
        assert 1.4 <= s <= 2.7, (key, s)
    # Popcorn is never slower end to end
    assert min(speed.values()) > 1.0

    # executing equivalence + speed at small scale
    rng = np.random.default_rng(3)
    x = rng.standard_normal((150, 8)).astype(np.float64)
    init = random_labels(150, 5, rng)

    def run_both():
        p = PopcornKernelKMeans(5, dtype=np.float64, max_iter=5,
                                check_convergence=False).fit(x, init_labels=init)
        b = BaselineCUDAKernelKMeans(5, dtype=np.float64, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
        return p, b

    p, b = benchmark(run_both)
    assert np.array_equal(p.labels_, b.labels_)
