"""Figure 7 — end-to-end Popcorn speedup over baseline CUDA (shim).

Kernel matrix (with Popcorn's GEMM/SYRK dispatch vs the baseline's
GEMM-only) plus 30 clustering iterations.  Paper band: 1.6-2.6x across
all datasets and k.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import BaselineCUDAKernelKMeans, random_labels
from repro.core import PopcornKernelKMeans


def test_fig7_popcorn_vs_baseline(benchmark):
    run_registered("fig7")

    # executing equivalence + speed at small scale
    rng = np.random.default_rng(3)
    x = rng.standard_normal((150, 8)).astype(np.float64)
    init = random_labels(150, 5, rng)

    def run_both():
        p = PopcornKernelKMeans(5, dtype=np.float64, max_iter=5,
                                check_convergence=False).fit(x, init_labels=init)
        b = BaselineCUDAKernelKMeans(5, dtype=np.float64, max_iter=5,
                                     check_convergence=False).fit(x, init_labels=init)
        return p, b

    p, b = benchmark(run_both)
    assert np.array_equal(p.labels_, b.labels_)
