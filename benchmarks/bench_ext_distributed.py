"""Extension — distributed Kernel K-means scaling (paper Sec. 7).

The paper's future work: partition the kernel matrix across GPUs so
datasets whose K exceeds one device's memory become clusterable.  The
bench models strong scaling on an 8-GPU NVLink node and an IB cluster,
and executes the SPMD implementation at small scale to verify it matches
single-device Popcorn bit for bit.
"""

import numpy as np

from paperfig import emit
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans
from repro.distributed import (
    DistributedPopcornKernelKMeans,
    INFINIBAND,
    NVLINK,
    model_distributed_popcorn,
)


def test_ext_distributed_scaling(benchmark):
    n, d, k = 200000, 780, 100  # K = 160 GB in FP32: needs >= 2 A100-80GB
    rows = []
    for comm, comm_name in ((NVLINK, "NVLink"), (INFINIBAND, "InfiniBand")):
        for g in (1, 2, 4, 8, 16):
            m = model_distributed_popcorn(n, d, k, g, comm=comm)
            rows.append(
                (comm_name, g, f"{m['makespan_s']:.3f}", f"{m['compute_s']:.3f}",
                 f"{m['comm_s']:.4f}", f"{m['speedup_vs_1gpu']:.2f}x",
                 f"{m['efficiency'] * 100:.0f}%")
            )
    emit(
        "ext_distributed",
        ["interconnect", "gpus", "makespan_s", "compute_s", "comm_s",
         "speedup", "efficiency"],
        rows,
        "distributed Popcorn strong scaling (modeled, n=200k)",
    )

    # strong scaling holds through 8 GPUs on NVLink
    nv = [r for r in rows if r[0] == "NVLink"]
    makespans = [float(r[2]) for r in nv]
    assert makespans[3] < makespans[1] < makespans[0]  # 8 < 2 < 1 GPUs
    # InfiniBand pays more communication than NVLink
    ib8 = [r for r in rows if r[0] == "InfiniBand" and r[1] == 8][0]
    nv8 = [r for r in nv if r[1] == 8][0]
    assert float(ib8[4]) > float(nv8[4])

    # executing equivalence, timed
    rng = np.random.default_rng(4)
    x = rng.standard_normal((90, 6)).astype(np.float64)
    init = random_labels(90, 4, rng)

    def run():
        return DistributedPopcornKernelKMeans(
            4, n_devices=3, dtype=np.float64, max_iter=6, check_convergence=False
        ).fit(x, init_labels=init)

    dist = benchmark(run)
    single = PopcornKernelKMeans(
        4, dtype=np.float64, max_iter=6, check_convergence=False
    ).fit(x, init_labels=init)
    assert np.array_equal(dist.labels_, single.labels_)
