"""Extension — distributed Kernel K-means scaling (paper Sec. 7) (shim).

The paper's future work: partition the kernel matrix across GPUs so
datasets whose K exceeds one device's memory become clusterable.  The
registry entry models strong scaling on an 8-GPU NVLink node and an IB
cluster; the shim executes the SPMD implementation at small scale to
verify it matches single-device Popcorn bit for bit.
"""

import numpy as np

from paperfig import run_registered
from repro.baselines import random_labels
from repro.core import PopcornKernelKMeans
from repro.distributed import DistributedPopcornKernelKMeans


def test_ext_distributed_scaling(benchmark):
    run_registered("ext_distributed")

    # executing equivalence, timed
    rng = np.random.default_rng(4)
    x = rng.standard_normal((90, 6)).astype(np.float64)
    init = random_labels(90, 4, rng)

    def run():
        return DistributedPopcornKernelKMeans(
            4, n_devices=3, dtype=np.float64, max_iter=6, check_convergence=False
        ).fit(x, init_labels=init)

    dist = benchmark(run)
    single = PopcornKernelKMeans(
        4, dtype=np.float64, max_iter=6, check_convergence=False
    ).fit(x, init_labels=init)
    assert np.array_equal(dist.labels_, single.labels_)
