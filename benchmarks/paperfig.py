"""Shared helpers for the figure-reproduction benchmarks.

Every bench in this directory regenerates one table or figure of the
paper's evaluation (Sec. 5): it prints the same rows/series the paper
plots and writes them to ``benchmarks/results/<exp>.csv``.  Absolute
numbers come from the calibrated device model (see DESIGN.md Sec. 2);
the *shape* — who wins, by what factor, where crossovers fall — is the
reproduction target recorded in EXPERIMENTS.md.

The pytest-benchmark timings attached to each bench measure the real
Python work of this reproduction (model evaluation or small-scale
execution), which keeps ``pytest benchmarks/ --benchmark-only`` honest.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.data import TABLE2
from repro.reporting import format_table, write_csv_rows

#: (n, d) per dataset, straight from Table 2.
DATASETS: Dict[str, Tuple[int, int]] = {name: (i.n, i.d) for name, i in TABLE2.items()}

#: Cluster counts the paper sweeps (Sec. 5.1.3).
K_VALUES = (10, 50, 100)

#: All timed clustering experiments run exactly 30 iterations (Sec. 5.1.3).
ITERS = 30

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit(exp_id: str, headers, rows, title: str) -> None:
    """Print a figure's series and persist it as CSV."""
    print(f"\n=== {exp_id}: {title} ===")
    print(format_table(headers, rows))
    write_csv_rows(os.path.join(RESULTS_DIR, f"{exp_id}.csv"), headers, rows)
