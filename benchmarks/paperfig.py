"""Shared helpers for the figure-reproduction benchmarks.

Every bench in this directory regenerates one table or figure of the
paper's evaluation (Sec. 5).  Since the registry-driven port, the rows
themselves come from :mod:`repro.bench.experiments` — each ``bench_*.py``
is a thin pytest-benchmark shim over its registry entry: it re-runs the
full-mode experiment, prints/persists the same CSV artifact, re-asserts
the paper's shape claims via the spec's ``check``, and times the real
small-scale Python work with pytest-benchmark.  ``repro-bench run``
drives the same entries without pytest and adds the consolidated
``BENCH_results.json`` artifact.

The pytest-benchmark timings attached to each bench measure the real
Python work of this reproduction (model evaluation or small-scale
execution), which keeps ``pytest benchmarks/ --benchmark-only`` honest.
"""

from __future__ import annotations

import os

from repro.bench import RunConfig, get_experiment
from repro.bench.experiments import DATASETS, ITERS, K_VALUES  # noqa: F401  (shim API)
from repro.reporting import format_table, write_csv_rows

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit(exp_id: str, headers, rows, title: str) -> None:
    """Print a figure's series and persist it as CSV."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print(f"\n=== {exp_id}: {title} ===")
    print(format_table(headers, rows))
    write_csv_rows(os.path.join(RESULTS_DIR, f"{exp_id}.csv"), headers, rows)


def run_registered(exp_id: str):
    """Run one registry experiment in full mode, emit its CSV, check it.

    The shared path of every ``bench_*.py`` shim: identical rows, CSV
    artifact, and shape assertions as the pre-registry scripts.
    """
    spec = get_experiment(exp_id)
    result = spec.run(RunConfig())
    emit(exp_id, result.headers, result.rows, spec.title)
    if spec.check is not None:
        spec.check(result)
    return result
