"""Figure 5 — SpMM throughput vs the baseline reduction kernel.

Nsight-style achieved GFLOP/s of the dominant kernel in each engine.
Paper: Popcorn 370-729 GFLOP/s rising with k; baseline 304-409 GFLOP/s
falling with k.  The bench regenerates the modeled profiler numbers and
times the real SpMM at small scale.
"""

import numpy as np

from paperfig import DATASETS, ITERS, K_VALUES, emit
from repro.modeling import model_baseline, model_popcorn
from repro.sparse import random_csr, selection_matrix, spmm


def test_fig5_throughput(benchmark):
    rows = []
    pop_series = {}
    base_series = {}
    for name, (n, d) in DATASETS.items():
        for k in K_VALUES:
            p = model_popcorn(n, d, k, iters=ITERS).profiler.achieved_gflops("cusparse.spmm")
            b = model_baseline(n, d, k, iters=ITERS).profiler.achieved_gflops(
                "baseline.k1_cluster_reduce"
            )
            pop_series.setdefault(name, []).append(p)
            base_series.setdefault(name, []).append(b)
            rows.append((name, k, f"{p:.0f}", f"{b:.0f}"))
    emit(
        "fig5",
        ["dataset", "k", "popcorn_spmm_gflops", "baseline_k1_gflops"],
        rows,
        "achieved throughput of the dominant kernel (modeled Nsight)",
    )

    # trends: Popcorn rises with k, baseline falls with k (every dataset)
    for name in DATASETS:
        p = pop_series[name]
        b = base_series[name]
        assert p[0] < p[1] < p[2], name
        assert b[0] > b[1] > b[2], name
    # bands on the large datasets (paper: 370-729 and 304-409)
    for name in ("acoustic", "cifar10", "ledgar", "mnist"):
        assert 330 <= min(pop_series[name]) and max(pop_series[name]) <= 760
        assert 280 <= min(base_series[name]) and max(base_series[name]) <= 450

    # real SpMM wall-clock at moderate scale (the actual kernel of this repo)
    rng = np.random.default_rng(2)
    n, k = 2000, 50
    labels = rng.integers(0, k, n).astype(np.int32)
    v = selection_matrix(labels, k, dtype=np.float64)
    k_mat = rng.standard_normal((n, n))
    out = benchmark(lambda: spmm(v, k_mat, alpha=-2.0))
    assert out.shape == (k, n)
