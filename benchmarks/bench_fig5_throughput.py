"""Figure 5 — SpMM throughput vs the baseline reduction kernel (shim).

Nsight-style achieved GFLOP/s of the dominant kernel in each engine.
Paper: Popcorn 370-729 GFLOP/s rising with k; baseline 304-409 GFLOP/s
falling with k.  The registry entry regenerates the modeled profiler
numbers; the shim times the real SpMM at small scale.
"""

import numpy as np

from paperfig import run_registered
from repro.sparse import selection_matrix, spmm


def test_fig5_throughput(benchmark):
    run_registered("fig5")

    # real SpMM wall-clock at moderate scale (the actual kernel of this repo)
    rng = np.random.default_rng(2)
    n, k = 2000, 50
    labels = rng.integers(0, k, n).astype(np.int32)
    v = selection_matrix(labels, k, dtype=np.float64)
    k_mat = rng.standard_normal((n, n))
    out = benchmark(lambda: spmm(v, k_mat, alpha=-2.0))
    assert out.shape == (k, n)
