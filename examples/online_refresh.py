"""Online fitting + live model refresh against a running service.

The full drift-handling loop of the online subsystem:

1. cold-start a model with `partial_fit` (bitwise one full fit
   iteration) and stand up a `PredictionService` on it;
2. while the service answers a steady query stream, feed arriving
   batches — drawn from a *drifted* distribution — to a shadow copy via
   `ModelRefresher.observe`;
3. publish the shadow as the next versioned `.npz` artifact and
   hot-swap the reloaded artifact into the live service
   (`ModelRefresher.refresh`) — zero dropped in-flight requests;
4. show the swap took: the served model version bumps and post-swap
   answers come from the refreshed model.

Run:  python examples/online_refresh.py
"""

import os
import tempfile
import threading

import numpy as np

from repro import PopcornKernelKMeans, PredictionService
from repro.data import make_blobs
from repro.serve import ModelRefresher


def main() -> None:
    # --- cold start: one partial_fit call == one fit iteration ---------
    x0, _ = make_blobs(900, 6, 4, rng=0)
    model = PopcornKernelKMeans(
        4, kernel="gaussian", backend="host", dtype=np.float64,
        seed=0, batch_size=300,
    )
    model.partial_fit(x0)
    print(f"cold start: {model.n_batches_seen_} batches absorbed, "
          f"objective {model.objective_:.2f}")

    one_iter = PopcornKernelKMeans(
        4, kernel="gaussian", backend="host", dtype=np.float64,
        seed=0, max_iter=1,
    ).fit(x0[:300])
    fresh = PopcornKernelKMeans(
        4, kernel="gaussian", backend="host", dtype=np.float64, seed=0
    ).partial_fit(x0[:300])
    assert np.array_equal(one_iter.labels_, fresh.labels_)
    assert one_iter.objective_ == fresh.objective_
    print("verified: full-data partial_fit == fit(max_iter=1), bit for bit\n")

    # --- serve under load while the data drifts ------------------------
    rng = np.random.default_rng(3)
    queries = rng.standard_normal((150, 6))
    drifted = make_blobs(600, 6, 4, rng=7)[0] + 1.5  # the world moved

    stop = threading.Event()
    answered = []

    def query_loop(svc):
        while not stop.is_set():
            answered.append(svc.predict_many(queries))

    with tempfile.TemporaryDirectory() as tmp:
        with PredictionService(model, batch_size=32, n_workers=2) as svc:
            client = threading.Thread(target=query_loop, args=(svc,))
            client.start()

            ref = ModelRefresher(svc, tmp, basename="popcorn")
            for lo in range(0, 600, 200):  # batches arrive over time
                ref.observe(drifted[lo : lo + 200])
            print(f"shadow absorbed {ref.n_batches_observed} online batches "
                  "(live model undisturbed)")

            path = ref.refresh()  # artifact + atomic hot swap
            stop.set()
            client.join()

            stats = svc.stats()
            post_swap = svc.predict_many(queries)
            served_model = svc.model

        print(f"published {os.path.basename(path)} "
              f"({os.path.getsize(path)} bytes)")
        print(f"hot swap: model version {stats['model_version']}, "
              f"{stats['model_swaps']} swap(s), "
              f"{len(answered)} query rounds answered in flight")
        assert np.array_equal(post_swap, served_model.predict(queries)), (
            "post-swap answers must come from the refreshed model"
        )
        print("verified: post-swap answers match the refreshed model")


if __name__ == "__main__":
    main()
