"""Quickstart: cluster non-linearly separable data with Popcorn.

Runs Kernel K-means (Popcorn's SpMM/SpMV formulation on the simulated
A100) against classical Lloyd K-means on the concentric-circles dataset —
the exact failure mode of linear K-means the paper's introduction opens
with — and prints cluster quality plus the modeled GPU timing breakdown.

Run:  python examples/quickstart.py
"""


from repro import LloydKMeans, PopcornKernelKMeans
from repro.data import make_circles
from repro.eval import adjusted_rand_index
from repro.kernels import GaussianKernel
from repro.reporting import fmt_seconds, format_table


def main() -> None:
    # two concentric rings: no straight line separates them
    x, y_true = make_circles(1000, rng=0)
    print(f"dataset: {x.shape[0]} points, {x.shape[1]} features, 2 rings\n")

    # --- classical K-means: fails by construction ---------------------
    lloyd = LloydKMeans(2, seed=0).fit(x)
    lloyd_ari = adjusted_rand_index(lloyd.labels_, y_true)

    # --- Popcorn Kernel K-means with an RBF kernel --------------------
    popcorn = PopcornKernelKMeans(
        2,
        kernel=GaussianKernel(gamma=5.0),
        seed=0,
        max_iter=100,
    ).fit(x)
    popcorn_ari = adjusted_rand_index(popcorn.labels_, y_true)

    print(
        format_table(
            ["algorithm", "ARI vs truth", "iterations"],
            [
                ["Lloyd (classical k-means)", f"{lloyd_ari:.3f}", lloyd.n_iter_],
                ["Popcorn (kernel k-means, RBF)", f"{popcorn_ari:.3f}", popcorn.n_iter_],
            ],
        )
    )
    assert popcorn_ari > 0.95, "kernel k-means should separate the rings"

    # --- modeled GPU timing breakdown (Fig. 8 style) -------------------
    print("\nmodeled A100 timing breakdown (Popcorn):")
    rows = [[phase, fmt_seconds(t)] for phase, t in sorted(popcorn.timings_.items())]
    print(format_table(["phase", "modeled time"], rows))
    print(f"\ngram method chosen by the n/d dispatch: {popcorn.gram_method_}")

    # --- out-of-sample prediction --------------------------------------
    x_new, y_new = make_circles(200, rng=99)
    pred = popcorn.predict(x_new)
    print(f"\nout-of-sample ARI on 200 fresh points: "
          f"{adjusted_rand_index(pred, y_new):.3f}")


if __name__ == "__main__":
    main()
