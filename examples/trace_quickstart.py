"""Observability quickstart: trace a fit and a serving run into Perfetto.

The `repro.obs` layer records what the process *actually* did — nested
wall-clock spans, one lane per thread — next to the *modeled* launch
timelines the simulated devices keep.  This example:

1. enables the tracer (the programmatic face of `REPRO_TRACE=1` /
   `--trace-out`);
2. fits Popcorn on the host backend with a threaded chunk schedule, so
   the work-stealing pool's task spans land on worker lanes;
3. fits the same data on two simulated devices (`backend="sharded:2"`)
   — per-iteration `sharded.step` spans plus modeled collective events;
4. serves a query stream through `PredictionService` and reads the same
   numbers three ways: the `trace_` fitted attribute, a combined
   Perfetto/chrome-trace file, and a Prometheus text snapshot.

Run:  python examples/trace_quickstart.py
"""

import json
import os
import tempfile

import numpy as np

from repro import PopcornKernelKMeans, PredictionService
from repro.data import make_blobs
from repro.obs import metrics, prometheus_text, trace, write_combined_trace
from repro.obs.export import estimator_profilers
from repro.reporting import format_table


def main() -> None:
    x, _ = make_blobs(900, 8, 5, rng=0)
    trace.enable()
    mark = trace.mark()

    # --- traced host fit (pool lanes) ---------------------------------
    host = PopcornKernelKMeans(
        5, kernel="linear", backend="host", dtype=np.float64,
        chunk_rows=128, n_threads=2, max_iter=8,
        check_convergence=False, seed=0,
    ).fit(x)
    assert host.trace_["fit.iter"]["count"] == 8
    assert host.trace_["pool.task"]["count"] > 0

    # --- traced sharded fit (one modeled lane per device) -------------
    sharded = PopcornKernelKMeans(
        5, kernel="linear", backend="sharded:2", dtype=np.float64,
        max_iter=8, check_convergence=False, seed=0,
    ).fit(x)
    assert sharded.trace_["sharded.step"]["count"] == 8
    assert np.array_equal(host.labels_, sharded.labels_)  # bit-exact SPMD

    # --- traced serving -----------------------------------------------
    rng = np.random.default_rng(1)
    queries = rng.standard_normal((128, x.shape[1]))
    with PredictionService(sharded, batch_size=32, n_workers=1) as svc:
        svc.predict_many(queries)
        stats = svc.stats()
    assert stats["served"] == 128

    # --- the per-name aggregate every fit carries ----------------------
    rows = [
        (name, agg["count"], f"{agg['total_s'] * 1e3:.2f}")
        for name, agg in sorted(trace.summary(since=mark).items())
    ]
    print(format_table(["span", "count", "total ms"], rows))

    # --- one Perfetto-loadable file: real spans + modeled lanes --------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.json")
        write_combined_trace(
            path, tracer=trace, since=mark,
            profilers=estimator_profilers(sharded),
        )
        events = json.loads(open(path).read())
        pids = sorted({e["pid"] for e in events})
        size = os.path.getsize(path)
    # pid 0 = wall-clock spans; one pid per simulated device + comm
    assert pids == [0, 1, 2, 3]
    print(f"\ncombined chrome-trace: {len(events)} events, {len(pids)} "
          f"process lanes, {size} bytes (load at https://ui.perfetto.dev)")

    # --- the aggregate face: Prometheus text exposition ----------------
    prom = prometheus_text(metrics.snapshot())
    counter_lines = [
        ln for ln in prom.splitlines()
        if ln.startswith("repro_") and "_total " in ln
    ]
    print("\nmetrics snapshot (counters):")
    for line in counter_lines:
        print(f"  {line}")
    assert any("pool_tasks" in ln for ln in counter_lines)
    assert any("serve_requests" in ln for ln in counter_lines)


if __name__ == "__main__":
    main()
