"""Distributed Kernel K-means across simulated GPUs (paper Sec. 7).

The paper's future work: datasets whose n x n kernel matrix exceeds one
GPU's memory need a distributed SpMM/SpMV.  This example

1. executes the SPMD implementation on 4 simulated A100s and verifies it
   reproduces single-device Popcorn's clustering exactly, and
2. models strong scaling at a size where the kernel matrix (160 GB)
   physically cannot fit on one 80 GB device.

Run:  python examples/distributed_clustering.py
"""

import numpy as np

from repro import DistributedPopcornKernelKMeans, PopcornKernelKMeans
from repro.baselines import random_labels
from repro.data import make_blobs
from repro.distributed import INFINIBAND, NVLINK, model_distributed_popcorn
from repro.reporting import fmt_seconds, format_table


def exact_equivalence_demo() -> None:
    print("--- SPMD correctness: 4 simulated GPUs vs 1 ---")
    x, _ = make_blobs(400, 8, 5, rng=0)
    init = random_labels(400, 5, np.random.default_rng(1))
    single = PopcornKernelKMeans(
        5, dtype=np.float64, max_iter=15, check_convergence=False
    ).fit(x, init_labels=init)
    dist = DistributedPopcornKernelKMeans(
        5, n_devices=4, dtype=np.float64, max_iter=15, check_convergence=False
    ).fit(x, init_labels=init)
    same = np.array_equal(single.labels_, dist.labels_)
    print(f"assignments identical across 15 iterations: {same}")
    print(f"modeled makespan on 4 GPUs: {fmt_seconds(dist.makespan_s_)} "
          f"(parallel efficiency {dist.parallel_efficiency_ * 100:.0f}%)")
    assert same


def scaling_study() -> None:
    n, d, k = 200000, 780, 100
    kernel_gb = 4.0 * n * n / 1e9
    print(f"\n--- strong scaling at n = {n} (kernel matrix = {kernel_gb:.0f} GB "
          f"> 80 GB: impossible on one A100) ---")
    rows = []
    for comm, cname in ((NVLINK, "NVLink"), (INFINIBAND, "InfiniBand")):
        for g in (2, 4, 8, 16):
            m = model_distributed_popcorn(n, d, k, g, comm=comm)
            fits = "yes" if kernel_gb / g <= 80 else "NO"
            rows.append([
                cname, g, fits, fmt_seconds(m["makespan_s"]),
                fmt_seconds(m["comm_s"]), f"{m['efficiency'] * 100:.0f}%",
            ])
    print(format_table(
        ["interconnect", "GPUs", "K fits?", "makespan", "comm time", "efficiency"],
        rows,
    ))


def main() -> None:
    exact_equivalence_demo()
    scaling_study()


if __name__ == "__main__":
    main()
