"""Serving quickstart: persist a fitted model and serve queries at scale.

The full inference lifecycle of the `repro.serve` subsystem:

1. fit Popcorn Kernel K-means on a training set;
2. save it as a versioned artifact and reload it (as a serving process
   would after a deploy) — predictions round-trip bit-exactly;
3. stand up a `PredictionService` (micro-batching queue + LRU cache +
   worker threads) and push a repeating query stream through it;
4. print the serving stats the service tracks per request.

Run:  python examples/serve_quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import PopcornKernelKMeans, PredictionService, load_model, save_model
from repro.data import make_blobs
from repro.reporting import format_table


def main() -> None:
    # --- train ---------------------------------------------------------
    x, _ = make_blobs(1200, 8, 5, rng=0)
    model = PopcornKernelKMeans(
        5, kernel="gaussian", backend="host", dtype=np.float64, seed=0
    ).fit(x)
    print(f"fitted Popcorn on n={x.shape[0]} d={x.shape[1]} "
          f"(k=5, {model.n_iter_} iterations)\n")

    # --- persist + reload ---------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(model, os.path.join(tmp, "model.npz"))
        size = os.path.getsize(path)
        served_model = load_model(path)
    print(f"artifact round trip: {size} bytes on disk")

    # held-out queries; ~30% of the stream repeats earlier queries (the
    # heavy-traffic pattern the LRU kernel-row cache absorbs)
    rng = np.random.default_rng(1)
    fresh = rng.standard_normal((700, 8))
    stream = np.concatenate([fresh, fresh[rng.integers(0, 700, size=300)]])

    reference = model.predict(stream)
    assert np.array_equal(served_model.predict(stream), reference), (
        "reloaded model must predict bit-identically"
    )

    # --- serve ---------------------------------------------------------
    with PredictionService(
        served_model, batch_size=64, max_delay_ms=2.0, n_workers=2, cache_size=1024
    ) as svc:
        head = svc.predict_many(stream[:700])
        tail = svc.predict_many(stream[700:])
        stats = svc.stats()
    served = np.concatenate([head, tail])
    assert np.array_equal(served, reference), "served labels must match predict"

    print("\nserving stats (micro-batched, cached):")
    print(
        format_table(
            ["stat", "value"],
            [
                ("requests", stats["requests"]),
                ("batches", stats["batches"]),
                ("mean batch size", f"{stats['mean_batch_size']:.1f}"),
                ("cache hit rate", f"{stats['cache_hit_rate'] * 100:.0f}%"),
                ("throughput", f"{stats['queries_per_s']:.0f} queries/s"),
                ("latency p50", f"{stats['latency_p50_ms']:.2f} ms"),
                ("latency p95", f"{stats['latency_p95_ms']:.2f} ms"),
            ],
        )
    )
    assert stats["cache_hits"] > 0, "repeated queries must hit the cache"
    print("\nserved labels are bit-identical to the fitting estimator's predict")


if __name__ == "__main__":
    main()
