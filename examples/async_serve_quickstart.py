"""Async serving quickstart: the open-loop front door end to end.

The asyncio half of the `repro.serve` subsystem:

1. fit Popcorn Kernel K-means and publish it as a versioned artifact;
2. stand up an `AsyncPredictionServer` over the artifact — admission
   control (`queue_bound`), digest-level coalescing of identical
   in-flight queries, micro-batching, and a shard worker replica;
3. burst duplicate-heavy traffic through it and show the backend saw
   only the unique rows;
4. overload it on purpose and count the `Overloaded` sheds;
5. drive a paced open-loop load run (`open_loop_load`) for the measured
   SLO numbers, and print the modeled autoscaling policy curve
   (`saturation_curve`) predicting how many workers a target qps needs.

Run:  python examples/async_serve_quickstart.py
"""

import asyncio
import os
import tempfile

import numpy as np

from repro import AsyncPredictionServer, PopcornKernelKMeans
from repro.data import make_blobs
from repro.errors import Overloaded
from repro.reporting import format_table
from repro.serve import curve_for_model, save_model
from repro.serve.frontdoor import open_loop_load


async def serve(path: str, model, queries: np.ndarray) -> None:
    reference = model.predict(queries)

    # --- coalescing: a duplicate-heavy burst --------------------------
    async with AsyncPredictionServer(
        path, batch_size=32, max_delay_ms=1.0, cache_size=0, processes=False
    ) as server:
        futures = [
            server.submit_nowait(queries[i])
            for _ in range(4)              # every row issued 4 times ...
            for i in range(32)
        ]
        results = await asyncio.gather(*futures)
        stats = server.stats()
    labels = np.array([int(r) for r in results[:32]], dtype=np.int32)
    assert np.array_equal(labels, reference[:32]), "async serving never steers"
    assert stats["backend_rows"] == 32, "duplicates must coalesce at the door"
    print(
        f"coalescing: {stats['requests']} requests -> "
        f"{stats['backend_rows']} backend rows in {stats['batches']} batches "
        f"({stats['coalesced']} coalesced)"
    )

    # --- admission control: overload on purpose -----------------------
    async with AsyncPredictionServer(
        path, batch_size=8, queue_bound=8, cache_size=0, processes=False
    ) as server:
        admitted, shed = [], 0
        for row in queries:                # a synchronous burst of uniques
            try:
                admitted.append(server.submit_nowait(row))
            except Overloaded:
                shed += 1
        await asyncio.gather(*admitted)
        stats = server.stats()
    assert shed == queries.shape[0] - 8, "the burst sheds exactly past the bound"
    assert stats["requests"] == stats["served"] + stats["shed"] + stats["errors"]
    print(
        f"admission control: {queries.shape[0]} bursted at queue_bound=8 -> "
        f"{stats['served']} served, {shed} shed with Overloaded"
    )

    # --- open-loop load: the measured SLO numbers ----------------------
    rows = []
    for qps in (500.0, 4000.0):
        async with AsyncPredictionServer(
            path, batch_size=32, max_delay_ms=1.0, queue_bound=1024,
            cache_size=0, processes=False,
        ) as server:
            rep = await open_loop_load(server, queries, qps)
        rows.append(
            (f"{rep.offered_qps:.0f}", rep.accepted, rep.shed,
             f"{rep.p50_ms:.2f}", f"{rep.p99_ms:.2f}")
        )
        assert rep.requests == rep.accepted + rep.shed
    print("\nopen-loop load (measured on this machine):")
    print(format_table(
        ["offered qps", "accepted", "shed", "p50 ms", "p99 ms"], rows
    ))


def main() -> None:
    # --- train + publish ----------------------------------------------
    x, _ = make_blobs(800, 8, 5, rng=0)
    model = PopcornKernelKMeans(
        5, kernel="gaussian", backend="host", dtype=np.float64, seed=0
    ).fit(x)
    queries = np.random.default_rng(1).standard_normal((64, 8))

    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(model, os.path.join(tmp, "model.npz"))
        print(f"published artifact: {os.path.getsize(path)} bytes\n")
        asyncio.run(serve(path, model, queries))

    # --- autoscaling policy: modeled, machine-independent --------------
    curve = curve_for_model(model, batch_size=64, workers=(1, 2, 4, 8))
    print("\nautoscale policy (modeled on the A100 cost model):")
    print(format_table(
        ["workers", "batch us", "worker qps", "saturation qps", "limited by"],
        [p.to_row() for p in curve],
    ))
    assert curve[-1].saturation_qps >= curve[0].saturation_qps
    print("\nasync front door served, shed, and scaled exactly as configured")


if __name__ == "__main__":
    main()
