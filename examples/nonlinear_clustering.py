"""Kernel showcase: which kernels find which non-linear structure.

Sweeps the library's kernels over three synthetic geometries (blobs,
concentric circles, interleaved moons) and reports ARI against ground
truth, reproducing the qualitative story of the paper's Sec. 1-2: the
linear kernel is classical K-means; non-linear kernels buy non-linear
boundaries at O(n^2) per iteration.

Run:  python examples/nonlinear_clustering.py
"""

import numpy as np

from repro import PopcornKernelKMeans
from repro.data import make_blobs, make_circles, make_moons
from repro.eval import adjusted_rand_index
from repro.kernels import GaussianKernel, LinearKernel, PolynomialKernel
from repro.reporting import format_table


def best_of(model_factory, x, y, seeds=(0, 1, 2)) -> float:
    """Best ARI over a few seeds (kernel k-means is init sensitive)."""
    return max(
        adjusted_rand_index(model_factory(s).fit(x).labels_, y) for s in seeds
    )


def main() -> None:
    datasets = {
        "blobs (linear ok)": make_blobs(600, 2, 3, rng=1),
        "circles (non-linear)": make_circles(600, rng=1),
        "moons (non-linear)": make_moons(600, rng=1),
    }
    kernels = {
        "linear": lambda: LinearKernel(),
        "polynomial d=2": lambda: PolynomialKernel(gamma=1.0, coef0=1.0, degree=2),
        "gaussian g=5": lambda: GaussianKernel(gamma=5.0),
        "gaussian g=20": lambda: GaussianKernel(gamma=20.0),
    }

    rows = []
    for dname, (x, y) in datasets.items():
        k = len(np.unique(y))
        for kname, kfac in kernels.items():
            ari = best_of(
                lambda s: PopcornKernelKMeans(
                    k, kernel=kfac(), seed=s, init="k-means++", max_iter=100
                ),
                x,
                y,
            )
            rows.append([dname, kname, f"{ari:.3f}"])

    print(format_table(["dataset", "kernel", "best ARI (3 seeds)"], rows))
    print(
        "\nReading: the linear kernel handles blobs but not circles; "
        "the RBF kernel separates the rings exactly, which is the gap "
        "Kernel K-means exists to close."
    )


if __name__ == "__main__":
    main()
