"""Performance study: regenerate the paper's headline comparisons.

Uses the analytical device model at full paper scale (Table 2 datasets,
k in {10, 50, 100}, 30 iterations) to print miniature versions of
Figs. 2, 4 and 7, plus a device-generation sweep (V100 / A100 / H100)
illustrating the Sec. 4.5 performance-portability claim: the same
SpMM/SpMV formulation rides each generation's cuSPARSE.

Run:  python examples/performance_study.py
"""

from repro.data import TABLE2
from repro.gpu import A100_80GB, H100_80GB, V100_32GB, op_point, roofline_series
from repro.kernels import model_gram_times
from repro.modeling import model_baseline, model_popcorn
from repro.plotting import scatter_plot
from repro.reporting import fmt_speedup, format_table

K_VALUES = (10, 50, 100)


def fig2_mini() -> None:
    print("--- Fig. 2 (mini): GEMM vs SYRK for the kernel matrix ---")
    rows = []
    for n, d in [(50000, 100), (50000, 10000), (10000, 1000), (10000, 100000)]:
        t = model_gram_times(A100_80GB, n, d)
        winner = "GEMM" if t["gemm"] < t["syrk"] else "SYRK"
        rows.append([n, d, f"{n / d:g}", winner,
                     fmt_speedup(max(t.values()) / min(t.values()))])
    print(format_table(["n", "d", "n/d", "winner", "margin"], rows))


def fig4_fig7_mini() -> None:
    print("\n--- Figs. 4 & 7 (mini): Popcorn vs the baseline CUDA engine ---")
    rows = []
    for name, info in TABLE2.items():
        for k in K_VALUES:
            pop = model_popcorn(info.n, info.d, k)
            base = model_baseline(info.n, info.d, k)
            rows.append([
                name, k,
                fmt_speedup(base.phase_s("distances") / pop.phase_s("distances")),
                fmt_speedup(base.total_s / pop.total_s),
            ])
    print(format_table(["dataset", "k", "distance speedup", "end-to-end speedup"], rows))


def device_sweep() -> None:
    print("\n--- performance portability: same code, three GPU generations ---")
    n, d, k = 60000, 780, 100  # mnist-shaped workload
    rows = []
    for spec in (V100_32GB, A100_80GB, H100_80GB):
        m = model_popcorn(n, d, k, spec=spec)
        rows.append([spec.name, f"{m.total_s:.3f}s",
                     f"{m.profiler.achieved_gflops('cusparse.spmm'):.0f}"])
    print(format_table(["device", "modeled total (30 iters)", "SpMM GFLOP/s"], rows))
    print("\nNewer generation -> faster run with zero code changes: the "
          "'guaranteed high performance' argument of Sec. 4.5.")


def fig6_mini() -> None:
    print("\n--- Fig. 6 (mini): roofline, mnist @ k=100 "
          "(P = Popcorn SpMM, B = baseline kernel, . = roofline) ---")
    pop = model_popcorn(60000, 780, 100)
    base = model_baseline(60000, 780, 100)
    p = op_point(A100_80GB, pop.profiler, "cusparse.spmm")
    b = op_point(A100_80GB, base.profiler, "baseline.k1_cluster_reduce")
    points = [(ai, g, ".") for ai, g in roofline_series(A100_80GB, 0.2, 40.0, 48)]
    points.append((p.arithmetic_intensity, p.achieved_gflops, "P"))
    points.append((b.arithmetic_intensity, b.achieved_gflops, "B"))
    print(scatter_plot(points, rows=14, cols=64, logx=True, logy=True))
    print(f"Popcorn reaches {p.fraction_of_roof * 100:.0f}% of its roof; "
          f"the baseline {b.fraction_of_roof * 100:.0f}%.")


def main() -> None:
    fig2_mini()
    fig4_fig7_mini()
    fig6_mini()
    device_sweep()


if __name__ == "__main__":
    main()
