"""Graph community detection via the Kernel K-means / spectral equivalence.

The paper's background (Sec. 2.2) cites Dhillon et al.: weighted Kernel
K-means on the normalized-cut kernel *is* spectral clustering.  This
example exercises that equivalence both ways:

1. community detection on networkx graphs (karate club, planted
   partitions) with :func:`repro.graph.cluster_graph`;
2. point-cloud clustering through a kNN graph
   (:class:`repro.graph.SpectralKernelKMeans`) on the interleaved-moons
   dataset — a geometry where *plain* kernel k-means struggles but the
   graph formulation solves cleanly.

The heavy lifting is still the paper's machinery: the normalized-cut
kernel feeds the same SpMM/SpMV weighted kernel k-means pipeline, and the
spectral initialisation is orthogonal iteration built on this library's
own sparse SpMM.

Run:  python examples/graph_communities.py
"""

import networkx as nx
import numpy as np

from repro import PopcornKernelKMeans, SpectralKernelKMeans
from repro.data import make_moons
from repro.eval import adjusted_rand_index
from repro.graph import cluster_graph
from repro.kernels import GaussianKernel
from repro.reporting import format_table


def karate_club() -> list:
    """The canonical two-faction social network."""
    g = nx.karate_club_graph()
    truth = np.array(
        [0 if g.nodes[v]["club"] == "Mr. Hi" else 1 for v in sorted(g.nodes)]
    )
    labels = cluster_graph(g, 2, seed=0)
    return ["karate club (2 factions)", g.number_of_nodes(),
            f"{adjusted_rand_index(labels, truth):.3f}"]


def planted_partition() -> list:
    """Four dense communities with sparse cross edges."""
    rng_seed = 42
    g = nx.planted_partition_graph(4, 25, p_in=0.5, p_out=0.02, seed=rng_seed)
    truth = np.repeat(np.arange(4), 25)
    labels = cluster_graph(g, 4, seed=0)
    return ["planted partition (4 x 25)", g.number_of_nodes(),
            f"{adjusted_rand_index(labels, truth):.3f}"]


def moons_comparison() -> list:
    """Where the graph view beats the radial kernel view."""
    x, y = make_moons(400, rng=3)
    plain = PopcornKernelKMeans(
        2, kernel=GaussianKernel(gamma=20.0), seed=0, init="k-means++", max_iter=100
    ).fit(x)
    spectral = SpectralKernelKMeans(2, seed=0).fit(x)
    return [
        ["moons: plain kernel k-means (RBF)", 400,
         f"{adjusted_rand_index(plain.labels_, y):.3f}"],
        ["moons: spectral (kNN graph + weighted KKM)", 400,
         f"{adjusted_rand_index(spectral.labels_, y):.3f}"],
    ]


def main() -> None:
    rows = [karate_club(), planted_partition(), *moons_comparison()]
    print(format_table(["task", "nodes/points", "ARI vs truth"], rows))
    print(
        "\nAll four results come from the same weighted Kernel K-means "
        "engine — normalized cut as kernel k-means, per Dhillon et al. "
        "(the equivalence the paper's Sec. 2.2 cites)."
    )


if __name__ == "__main__":
    main()
