"""SAR-style image change detection with Kernel K-means.

The paper's introduction motivates GPU Kernel K-means with
latency-sensitive applications, citing SAR image change detection
(Jia et al., IEEE GRSL 2016): cluster per-pixel difference features from
two co-registered images into "changed" vs "unchanged".  This example
synthesises a pair of speckled images with a hidden changed region,
builds the difference-image feature vectors, and lets Popcorn find the
changed pixels — then reports detection quality and the modeled GPU time
(the quantity the paper argues must be small for real-time use).

Run:  python examples/image_change_detection.py
"""

import numpy as np

from repro import PopcornKernelKMeans
from repro.eval import clustering_accuracy
from repro.kernels import GaussianKernel
from repro.reporting import fmt_seconds, format_table

SIDE = 48  # image side length -> n = 2304 pixels


def synthesize_pair(rng: np.random.Generator):
    """Two speckled intensity images; a disc-shaped region changes."""
    base = rng.gamma(shape=4.0, scale=0.25, size=(SIDE, SIDE))
    img1 = base * rng.gamma(shape=9.0, scale=1 / 9.0, size=(SIDE, SIDE))  # speckle
    img2 = base * rng.gamma(shape=9.0, scale=1 / 9.0, size=(SIDE, SIDE))
    yy, xx = np.mgrid[0:SIDE, 0:SIDE]
    changed = (yy - SIDE * 0.6) ** 2 + (xx - SIDE * 0.35) ** 2 < (SIDE * 0.18) ** 2
    img2 = img2 + changed * rng.gamma(shape=6.0, scale=0.5, size=(SIDE, SIDE))
    return img1, img2, changed.ravel().astype(np.int32)


def difference_features(img1: np.ndarray, img2: np.ndarray, win: int = 2) -> np.ndarray:
    """Per-pixel features: log-ratio plus a (2*win+1)^2 local-mean context.

    The log-ratio operator is the standard SAR change statistic; the
    local mean is the neighbourhood information Jia et al. exploit — it
    averages the multiplicative speckle out of the change signal.
    """
    eps = 1e-6
    log_ratio = np.log((img2 + eps) / (img1 + eps))
    padded = np.pad(log_ratio, win, mode="edge")
    local = np.zeros_like(log_ratio)
    width = 2 * win + 1
    for dy in range(-win, win + 1):
        for dx in range(-win, win + 1):
            local += padded[win + dy : win + dy + SIDE, win + dx : win + dx + SIDE]
    local /= width * width
    feats = np.stack([log_ratio.ravel(), local.ravel()], axis=1)
    # standardise features
    feats = (feats - feats.mean(axis=0)) / (feats.std(axis=0) + 1e-9)
    return feats.astype(np.float32)


def main() -> None:
    rng = np.random.default_rng(7)
    img1, img2, truth = synthesize_pair(rng)
    x = difference_features(img1, img2)
    n = x.shape[0]
    print(f"{SIDE}x{SIDE} image pair -> {n} pixels, {x.shape[1]} features; "
          f"{truth.sum()} truly changed\n")

    model = PopcornKernelKMeans(
        2, kernel=GaussianKernel(gamma=0.1), seed=0, init="k-means++", max_iter=50
    ).fit(x)

    acc = clustering_accuracy(model.labels_, truth)
    # orient labels: the changed class is the smaller cluster
    pred = model.labels_
    if np.bincount(pred)[0] < np.bincount(pred)[1]:
        pred = 1 - pred
    tp = int(((pred == 1) & (truth == 1)).sum())
    fp = int(((pred == 1) & (truth == 0)).sum())
    fn = int(((pred == 0) & (truth == 1)).sum())
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)

    print(
        format_table(
            ["metric", "value"],
            [
                ["detection accuracy (best matching)", f"{acc:.3f}"],
                ["precision (changed)", f"{precision:.3f}"],
                ["recall (changed)", f"{recall:.3f}"],
                ["iterations", model.n_iter_],
                ["modeled GPU time (total)", fmt_seconds(sum(model.timings_.values()))],
                ["modeled GPU time (distances)", fmt_seconds(model.timings_["distances"])],
            ],
        )
    )
    print(
        "\nThe modeled end-to-end time is milliseconds — the latency class "
        "the paper argues GPU Kernel K-means unlocks for change detection."
    )


if __name__ == "__main__":
    main()
